//! Rejection paths of the `BENCH_*.json` schema validator.
//!
//! The happy path is covered by the scenario round-trip test (every registered
//! scenario's output validates); these tests pin down what the validator *refuses*: a
//! wrong schema version, missing required fields, wrong JSON types, non-finite and
//! negative numbers, disordered percentiles and empty point lists. The runner validates
//! every report before writing it, so each rejection here is a corrupt file that never
//! reaches disk.

use pocc_bench::json::{self, Json};
use pocc_bench::{scenarios, Scale};

/// A known-good report document to corrupt: the cheapest registered scenario at smoke
/// scale.
fn valid_report() -> Json {
    let doc = scenarios::find("baseline")
        .unwrap()
        .run(Scale::Smoke, |_| {})
        .to_json();
    json::validate_report(&doc).expect("a fresh report validates");
    doc
}

/// Replaces the value at `path` (dot-separated object keys; `points.0` indexes arrays)
/// with `value`, panicking if the path does not exist.
fn set(doc: &mut Json, path: &str, value: Json) {
    let mut node = doc;
    let segments: Vec<&str> = path.split('.').collect();
    let (last, walk) = segments.split_last().unwrap();
    for seg in walk {
        node = step(node, seg);
    }
    *step(node, last) = value;
}

/// Removes the object member at `path`.
fn remove(doc: &mut Json, path: &str) {
    let mut node = doc;
    let segments: Vec<&str> = path.split('.').collect();
    let (last, walk) = segments.split_last().unwrap();
    for seg in walk {
        node = step(node, seg);
    }
    match node {
        Json::Obj(members) => members.retain(|(k, _)| k != last),
        _ => panic!("{path}: parent is not an object"),
    }
}

fn step<'j>(node: &'j mut Json, seg: &str) -> &'j mut Json {
    match node {
        Json::Obj(members) => members
            .iter_mut()
            .find(|(k, _)| k == seg)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("no member {seg:?}")),
        Json::Arr(items) => {
            let idx: usize = seg.parse().unwrap_or_else(|_| panic!("bad index {seg:?}"));
            &mut items[idx]
        }
        _ => panic!("cannot descend into a scalar via {seg:?}"),
    }
}

fn assert_rejected(doc: &Json, expected_fragment: &str) {
    let err = json::validate_report(doc).expect_err("corrupt report must be rejected");
    assert!(
        err.contains(expected_fragment),
        "error {err:?} should mention {expected_fragment:?}"
    );
}

#[test]
fn rejects_wrong_and_missing_schema_version() {
    let mut doc = valid_report();
    set(
        &mut doc,
        "schema_version",
        Json::u64(json::SCHEMA_VERSION + 1),
    );
    assert_rejected(&doc, "schema_version");

    let mut doc = valid_report();
    remove(&mut doc, "schema_version");
    assert_rejected(&doc, "schema_version");
}

#[test]
fn rejects_missing_required_fields_at_every_level() {
    for path in [
        "scenario",
        "points",
        "points.0.label",
        "points.0.throughput_ops_per_sec",
        "points.0.latency_us.all.p99",
        "points.0.network.wan_messages",
        "points.0.consistency.violations",
    ] {
        let mut doc = valid_report();
        remove(&mut doc, path);
        let field = path.rsplit('.').next().unwrap();
        assert_rejected(&doc, field);
    }
}

#[test]
fn rejects_wrong_json_types() {
    let mut doc = valid_report();
    set(&mut doc, "seed", Json::str("42"));
    assert_rejected(&doc, "expected a number");

    let mut doc = valid_report();
    set(&mut doc, "scenario", Json::u64(7));
    assert_rejected(&doc, "expected a string");

    let mut doc = valid_report();
    set(&mut doc, "points", Json::Obj(vec![]));
    assert_rejected(&doc, "expected an array");
}

#[test]
fn rejects_non_finite_numbers() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut doc = valid_report();
        set(&mut doc, "points.0.throughput_ops_per_sec", Json::Num(bad));
        assert_rejected(&doc, "finite");
    }
}

#[test]
fn rejects_negative_quantities() {
    for path in [
        "points.0.throughput_ops_per_sec",
        "points.0.latency_us.all.p50",
        "points.0.operations.total",
    ] {
        let mut doc = valid_report();
        set(&mut doc, path, Json::Num(-1.0));
        assert_rejected(&doc, "non-negative");
    }
}

#[test]
fn rejects_disordered_percentiles_and_empty_points() {
    let mut doc = valid_report();
    set(&mut doc, "points.0.latency_us.all.p999", Json::Num(0.0));
    set(&mut doc, "points.0.latency_us.all.max", Json::Num(0.0));
    assert_rejected(&doc, "ordered");

    let mut doc = valid_report();
    set(&mut doc, "points", Json::Arr(vec![]));
    assert_rejected(&doc, "at least one point");
}
