//! The driver-facing API implemented by both protocol state machines (POCC and Cure\*).
//!
//! The discrete-event simulator and the threaded runtime only know about
//! [`ProtocolServer`]: they deliver client requests, server messages and periodic ticks,
//! and they ship the returned [`ServerOutput`]s over the (simulated or real) network.
//! Both POCC and Cure\* implement this trait, which is what makes the head-to-head
//! comparison of the paper's evaluation possible with a single harness.

use crate::{ClientRequest, ServerOutput};
use pocc_types::{ClientId, Key, ReplicaId, ServerId, Timestamp};
use std::time::Duration;

/// Counters common to both protocol implementations, snapshotted by the harness at the end
/// of a run (or periodically, to build time series).
///
/// All counters are cumulative since server creation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Number of GET operations served (replies sent).
    pub gets_served: u64,
    /// Number of PUT operations served.
    pub puts_served: u64,
    /// Number of read-only transactions coordinated to completion.
    pub rotx_served: u64,
    /// Number of transactional slice reads served on behalf of coordinators.
    pub slices_served: u64,

    /// Number of operations (GET, PUT or slice) that blocked at least once waiting for a
    /// missing dependency. POCC-specific; always zero for Cure\*.
    pub blocked_operations: u64,
    /// Total time spent blocked across all blocked operations.
    pub total_block_time: Duration,
    /// Number of operations currently parked waiting for a dependency.
    pub currently_blocked: u64,
    /// Total time PUT handlers spent waiting for the local clock to exceed the client's
    /// dependency timestamps (Algorithm 2 line 7).
    pub clock_wait_time: Duration,

    /// GET operations that returned an *old* version (a fresher version existed in the
    /// chain). Cure\*-specific staleness metric (§V-B); always zero for POCC GETs.
    pub old_gets: u64,
    /// GET operations for which at least one version of the requested item was not yet
    /// stable (the paper's "unmerged" items).
    pub unmerged_gets: u64,
    /// Sum over old GETs of the number of fresher versions in the chain (to compute the
    /// "# Fresher vers." series of Figure 2b).
    pub fresher_versions_sum: u64,
    /// Sum over unmerged GETs of the number of unmerged versions in the chain.
    pub unmerged_versions_sum: u64,
    /// GET operations served through a GSS-stable fall-back read instead of the
    /// freshest version (the Adaptive protocol's per-key pessimism; always zero for the
    /// paper's three protocols).
    pub stable_fallback_gets: u64,
    /// Transactional read results that returned an old version (Figure 3d).
    pub old_tx_items: u64,
    /// Transactional read results for which some version of the item was unmerged.
    pub unmerged_tx_items: u64,
    /// Total transactional items returned.
    pub tx_items_returned: u64,

    /// Replication messages received from sibling replicas.
    pub replicate_received: u64,
    /// Replication messages sent to sibling replicas.
    pub replicate_sent: u64,
    /// Heartbeats received.
    pub heartbeats_received: u64,
    /// Heartbeats sent.
    pub heartbeats_sent: u64,
    /// Stabilization-protocol messages processed (sent + received). Cure\* and HA-POCC.
    pub stabilization_messages: u64,
    /// Batch envelopes sent (replication batching enabled only). The batched messages
    /// are still counted individually in `replicate_sent`/`gc_messages`.
    pub batches_sent: u64,
    /// Garbage-collection messages processed (sent + received).
    pub gc_messages: u64,
    /// Versions removed by garbage collection.
    pub gc_versions_removed: u64,

    /// Client sessions aborted by the partition-detection timeout (§III-B).
    pub sessions_aborted: u64,

    /// Total bytes of server-to-server traffic sent (wire-size estimate).
    pub bytes_sent: u64,

    /// Operations served entirely on a worker lane, without deferring to the spine
    /// (threaded runtime only; always zero for serial servers and the simulator).
    pub lane_fast_path_hits: u64,
    /// Operations a lane had to defer to the full policy dispatch on the spine
    /// (threaded runtime only).
    pub lane_fast_path_misses: u64,
    /// Times the spine mutex was acquired (threaded runtime only).
    pub spine_acquisitions: u64,
    /// Iterations the pipeline drain spent waiting for an in-flight lane slot to
    /// complete (threaded runtime only; each spin is a yield or a short park).
    pub drain_spins: u64,
}

impl MetricsSnapshot {
    /// Total client operations served (GET + PUT + RO-TX).
    pub fn operations_served(&self) -> u64 {
        self.gets_served + self.puts_served + self.rotx_served
    }

    /// Probability that an operation blocked, over everything this server served
    /// (the paper's "blocking probability", Figures 2a and 3c).
    pub fn blocking_probability(&self) -> f64 {
        let denom = self.operations_served() + self.slices_served;
        if denom == 0 {
            0.0
        } else {
            self.blocked_operations as f64 / denom as f64
        }
    }

    /// Average time a blocked operation spent blocked (Figures 2a and 3c).
    pub fn avg_block_time(&self) -> Duration {
        if self.blocked_operations == 0 {
            Duration::ZERO
        } else {
            self.total_block_time / self.blocked_operations as u32
        }
    }

    /// Fraction of GETs that returned an old version (Figure 2b).
    pub fn old_get_fraction(&self) -> f64 {
        if self.gets_served == 0 {
            0.0
        } else {
            self.old_gets as f64 / self.gets_served as f64
        }
    }

    /// Fraction of GETs that observed an unmerged item (Figure 2b).
    pub fn unmerged_get_fraction(&self) -> f64 {
        if self.gets_served == 0 {
            0.0
        } else {
            self.unmerged_gets as f64 / self.gets_served as f64
        }
    }

    /// Average number of fresher versions above an old returned item (Figure 2b).
    pub fn avg_fresher_versions(&self) -> f64 {
        if self.old_gets == 0 {
            0.0
        } else {
            self.fresher_versions_sum as f64 / self.old_gets as f64
        }
    }

    /// Average number of unmerged versions for GETs that observed one (Figure 2b).
    pub fn avg_unmerged_versions(&self) -> f64 {
        if self.unmerged_gets == 0 {
            0.0
        } else {
            self.unmerged_versions_sum as f64 / self.unmerged_gets as f64
        }
    }

    /// Fraction of transactional items that were old (Figure 3d).
    pub fn old_tx_fraction(&self) -> f64 {
        if self.tx_items_returned == 0 {
            0.0
        } else {
            self.old_tx_items as f64 / self.tx_items_returned as f64
        }
    }

    /// Fraction of transactional items for which some version was unmerged (Figure 3d).
    pub fn unmerged_tx_fraction(&self) -> f64 {
        if self.tx_items_returned == 0 {
            0.0
        } else {
            self.unmerged_tx_items as f64 / self.tx_items_returned as f64
        }
    }

    /// Adds every counter of `other` into `self`. Used by the harness to aggregate the
    /// snapshots of all servers of a deployment.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.gets_served += other.gets_served;
        self.puts_served += other.puts_served;
        self.rotx_served += other.rotx_served;
        self.slices_served += other.slices_served;
        self.blocked_operations += other.blocked_operations;
        self.total_block_time += other.total_block_time;
        self.currently_blocked += other.currently_blocked;
        self.clock_wait_time += other.clock_wait_time;
        self.old_gets += other.old_gets;
        self.unmerged_gets += other.unmerged_gets;
        self.fresher_versions_sum += other.fresher_versions_sum;
        self.unmerged_versions_sum += other.unmerged_versions_sum;
        self.stable_fallback_gets += other.stable_fallback_gets;
        self.old_tx_items += other.old_tx_items;
        self.unmerged_tx_items += other.unmerged_tx_items;
        self.tx_items_returned += other.tx_items_returned;
        self.replicate_received += other.replicate_received;
        self.replicate_sent += other.replicate_sent;
        self.heartbeats_received += other.heartbeats_received;
        self.heartbeats_sent += other.heartbeats_sent;
        self.stabilization_messages += other.stabilization_messages;
        self.batches_sent += other.batches_sent;
        self.gc_messages += other.gc_messages;
        self.gc_versions_removed += other.gc_versions_removed;
        self.sessions_aborted += other.sessions_aborted;
        self.bytes_sent += other.bytes_sent;
        self.lane_fast_path_hits += other.lane_fast_path_hits;
        self.lane_fast_path_misses += other.lane_fast_path_misses;
        self.spine_acquisitions += other.spine_acquisitions;
        self.drain_spins += other.drain_spins;
    }

    /// The difference `self - earlier`, counter by counter. Used to build per-interval
    /// time series out of cumulative snapshots.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            gets_served: self.gets_served - earlier.gets_served,
            puts_served: self.puts_served - earlier.puts_served,
            rotx_served: self.rotx_served - earlier.rotx_served,
            slices_served: self.slices_served - earlier.slices_served,
            blocked_operations: self.blocked_operations - earlier.blocked_operations,
            total_block_time: self.total_block_time - earlier.total_block_time,
            currently_blocked: self.currently_blocked,
            clock_wait_time: self.clock_wait_time - earlier.clock_wait_time,
            old_gets: self.old_gets - earlier.old_gets,
            unmerged_gets: self.unmerged_gets - earlier.unmerged_gets,
            fresher_versions_sum: self.fresher_versions_sum - earlier.fresher_versions_sum,
            unmerged_versions_sum: self.unmerged_versions_sum - earlier.unmerged_versions_sum,
            stable_fallback_gets: self.stable_fallback_gets - earlier.stable_fallback_gets,
            old_tx_items: self.old_tx_items - earlier.old_tx_items,
            unmerged_tx_items: self.unmerged_tx_items - earlier.unmerged_tx_items,
            tx_items_returned: self.tx_items_returned - earlier.tx_items_returned,
            replicate_received: self.replicate_received - earlier.replicate_received,
            replicate_sent: self.replicate_sent - earlier.replicate_sent,
            heartbeats_received: self.heartbeats_received - earlier.heartbeats_received,
            heartbeats_sent: self.heartbeats_sent - earlier.heartbeats_sent,
            stabilization_messages: self.stabilization_messages - earlier.stabilization_messages,
            batches_sent: self.batches_sent - earlier.batches_sent,
            gc_messages: self.gc_messages - earlier.gc_messages,
            gc_versions_removed: self.gc_versions_removed - earlier.gc_versions_removed,
            sessions_aborted: self.sessions_aborted - earlier.sessions_aborted,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            lane_fast_path_hits: self.lane_fast_path_hits - earlier.lane_fast_path_hits,
            lane_fast_path_misses: self.lane_fast_path_misses - earlier.lane_fast_path_misses,
            spine_acquisitions: self.spine_acquisitions - earlier.spine_acquisitions,
            drain_spins: self.drain_spins - earlier.drain_spins,
        }
    }
}

/// The dispatch interface of a protocol server state machine, as seen by the driving
/// layer: client requests in, server messages in, periodic ticks — [`ServerOutput`]s out.
///
/// Implementations must be purely reactive: they perform no I/O and no sleeping; every
/// externally visible action is returned as a [`ServerOutput`]. Drivers that also need
/// observability (metrics, digests, store statistics) additionally require
/// [`ServerIntrospect`]; [`InstrumentedServer`] bundles the two for trait objects.
pub trait ProtocolServer: Send {
    /// The identity of this server (`p^m_n`).
    fn server_id(&self) -> ServerId;

    /// Handles a client request (GET, PUT or RO-TX). May return no output if the request
    /// had to be parked waiting for a missing dependency.
    fn handle_client_request(
        &mut self,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput>;

    /// Handles a message from another server (replication, heartbeat, slice traffic,
    /// stabilization, garbage collection).
    fn handle_server_message(
        &mut self,
        from: ServerId,
        message: crate::ServerMessage,
    ) -> Vec<ServerOutput>;

    /// Periodic maintenance: heartbeat emission, stabilization rounds, garbage collection,
    /// partition-detection timeouts, re-evaluation of clock-dependent waits. The driver
    /// calls this at least once per heartbeat interval.
    fn tick(&mut self) -> Vec<ServerOutput>;

    /// Returns and resets the number of *extra work units* performed since the last call:
    /// version-chain elements traversed beyond the head and vector merges performed by
    /// stabilization rounds. The simulator charges `Config::chain_traversal_cost` of CPU
    /// time per unit, which is how the resource-efficiency difference between POCC and
    /// Cure\* (§V-B "Summary of the results") shows up in the reproduced figures.
    fn take_extra_work(&mut self) -> u64 {
        0
    }
}

/// Read-only observability of a protocol server: cumulative metrics, a convergence
/// digest, and version-store statistics.
///
/// Split out of [`ProtocolServer`] so execution layers that only *drive* a server (the
/// threaded runtime's hot path) and harnesses that only *observe* one (report builders)
/// each depend on exactly the half they need.
pub trait ServerIntrospect {
    /// A snapshot of the server's cumulative metrics.
    fn metrics(&self) -> MetricsSnapshot;

    /// A digest of the freshest version of every key this server stores, used by the
    /// convergence checks: `(key, update time, source replica)` sorted by key.
    fn digest(&self) -> Vec<(Key, Timestamp, ReplicaId)>;

    /// Aggregate statistics of the server's version store (keys, retained versions,
    /// longest chain, GC removals), summed over its shards.
    fn store_stats(&self) -> pocc_storage::StoreStats;

    /// Per-shard statistics of the server's version store, indexed by shard. Used by the
    /// benchmark harness to report how evenly the key space spreads.
    fn shard_stats(&self) -> Vec<pocc_storage::ShardStats>;
}

/// A server that can be both driven and observed: the simulator and the serial runtime
/// hold their protocol servers as `Box<dyn InstrumentedServer>`.
///
/// Blanket-implemented for every type that implements both halves; never implement it
/// directly.
pub trait InstrumentedServer: ProtocolServer + ServerIntrospect {}

impl<T: ProtocolServer + ServerIntrospect + ?Sized> InstrumentedServer for T {}

/// The interface of a client session state machine: it turns application-level operations
/// into [`ClientRequest`]s and folds replies back into its dependency-tracking state.
pub trait ProtocolClient {
    /// The client id of this session.
    fn client_id(&self) -> ClientId;

    /// The server this session is attached to.
    fn home_server(&self) -> ServerId;

    /// Builds a GET request for `key`.
    fn get(&self, key: Key) -> ClientRequest;

    /// Builds a PUT request for `key`.
    fn put(&self, key: Key, value: pocc_types::Value) -> ClientRequest;

    /// Builds a RO-TX request for `keys`.
    fn ro_tx(&self, keys: Vec<Key>) -> ClientRequest;

    /// Folds a reply into the session state (dependency vectors). Returns `Err` if the
    /// session was aborted by the server and must be re-initialised.
    fn process_reply(&mut self, reply: &crate::ClientReply) -> pocc_types::Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios_handle_empty_snapshots() {
        let m = MetricsSnapshot::default();
        assert_eq!(m.blocking_probability(), 0.0);
        assert_eq!(m.avg_block_time(), Duration::ZERO);
        assert_eq!(m.old_get_fraction(), 0.0);
        assert_eq!(m.unmerged_get_fraction(), 0.0);
        assert_eq!(m.avg_fresher_versions(), 0.0);
        assert_eq!(m.avg_unmerged_versions(), 0.0);
        assert_eq!(m.old_tx_fraction(), 0.0);
        assert_eq!(m.unmerged_tx_fraction(), 0.0);
        assert_eq!(m.operations_served(), 0);
    }

    #[test]
    fn derived_ratios_compute_expected_values() {
        let m = MetricsSnapshot {
            gets_served: 80,
            puts_served: 10,
            rotx_served: 10,
            slices_served: 0,
            blocked_operations: 10,
            total_block_time: Duration::from_millis(50),
            old_gets: 20,
            fresher_versions_sum: 60,
            unmerged_gets: 40,
            unmerged_versions_sum: 80,
            old_tx_items: 5,
            unmerged_tx_items: 10,
            tx_items_returned: 100,
            ..MetricsSnapshot::default()
        };
        assert_eq!(m.operations_served(), 100);
        assert!((m.blocking_probability() - 0.1).abs() < 1e-12);
        assert_eq!(m.avg_block_time(), Duration::from_millis(5));
        assert!((m.old_get_fraction() - 0.25).abs() < 1e-12);
        assert!((m.unmerged_get_fraction() - 0.5).abs() < 1e-12);
        assert!((m.avg_fresher_versions() - 3.0).abs() < 1e-12);
        assert!((m.avg_unmerged_versions() - 2.0).abs() < 1e-12);
        assert!((m.old_tx_fraction() - 0.05).abs() < 1e-12);
        assert!((m.unmerged_tx_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MetricsSnapshot {
            gets_served: 3,
            total_block_time: Duration::from_millis(1),
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            gets_served: 4,
            puts_served: 2,
            total_block_time: Duration::from_millis(2),
            bytes_sent: 100,
            ..MetricsSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.gets_served, 7);
        assert_eq!(a.puts_served, 2);
        assert_eq!(a.total_block_time, Duration::from_millis(3));
        assert_eq!(a.bytes_sent, 100);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let earlier = MetricsSnapshot {
            gets_served: 10,
            puts_served: 5,
            total_block_time: Duration::from_millis(2),
            ..MetricsSnapshot::default()
        };
        let later = MetricsSnapshot {
            gets_served: 25,
            puts_served: 6,
            total_block_time: Duration::from_millis(5),
            currently_blocked: 3,
            ..MetricsSnapshot::default()
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.gets_served, 15);
        assert_eq!(delta.puts_served, 1);
        assert_eq!(delta.total_block_time, Duration::from_millis(3));
        // Gauges (currently_blocked) are carried over, not subtracted.
        assert_eq!(delta.currently_blocked, 3);
    }
}
