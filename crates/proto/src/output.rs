//! Sans-IO outputs produced by the protocol state machines.

use crate::{ClientReply, ClientRequest, ServerMessage};
use pocc_types::{ClientId, ServerId, Timestamp};
use serde::{Deserialize, Serialize};

/// An input event a server can receive, tagged with its origin.
///
/// The simulator and the threaded runtime translate network deliveries into
/// `ClientEvent`s and feed them to the protocol state machines.
#[derive(Clone, PartialEq, Debug)]
pub enum ClientEvent {
    /// A request from a client connected (or forwarded) to this server.
    Request {
        /// The issuing client.
        client: ClientId,
        /// The request.
        request: ClientRequest,
    },
    /// A message from another server.
    Server {
        /// The sending server.
        from: ServerId,
        /// The message.
        message: ServerMessage,
    },
}

/// An action requested by a protocol state machine. The driving layer (simulator or
/// runtime) is responsible for actually delivering replies and messages.
#[derive(Clone, PartialEq, Debug)]
pub enum ServerOutput {
    /// Send a reply to a client.
    Reply {
        /// The destination client.
        client: ClientId,
        /// The reply payload.
        reply: ClientReply,
    },
    /// Send a message to another server.
    Send {
        /// The destination server.
        to: ServerId,
        /// The message payload.
        message: ServerMessage,
    },
}

impl ServerOutput {
    /// Convenience constructor for a client reply.
    pub fn reply(client: ClientId, reply: ClientReply) -> Self {
        ServerOutput::Reply { client, reply }
    }

    /// Convenience constructor for a server-to-server send.
    pub fn send(to: ServerId, message: ServerMessage) -> Self {
        ServerOutput::Send { to, message }
    }

    /// Whether this output is a reply to the given client.
    pub fn is_reply_to(&self, c: ClientId) -> bool {
        matches!(self, ServerOutput::Reply { client, .. } if *client == c)
    }

    /// Whether this output is a message to the given server.
    pub fn is_send_to(&self, s: ServerId) -> bool {
        matches!(self, ServerOutput::Send { to, .. } if *to == s)
    }
}

/// A message in flight between two servers, as tracked by the network substrates.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Envelope {
    /// The sending server.
    pub from: ServerId,
    /// The destination server.
    pub to: ServerId,
    /// The time the message was handed to the network.
    pub sent_at: Timestamp,
    /// The payload.
    pub message: ServerMessage,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(from: ServerId, to: ServerId, sent_at: Timestamp, message: ServerMessage) -> Self {
        Envelope {
            from,
            to,
            sent_at,
            message,
        }
    }

    /// Whether the envelope crosses data centers (and therefore pays WAN latency).
    pub fn crosses_dc(&self) -> bool {
        self.from.replica != self.to.replica
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{DependencyVector, Key};

    #[test]
    fn output_helpers_classify_destinations() {
        let c = ClientId(3);
        let s = ServerId::new(1u16, 2u32);
        let reply = ServerOutput::reply(
            c,
            ClientReply::Put {
                update_time: Timestamp(1),
            },
        );
        let send = ServerOutput::send(
            s,
            ServerMessage::Heartbeat {
                clock: Timestamp(1),
            },
        );
        assert!(reply.is_reply_to(c));
        assert!(!reply.is_reply_to(ClientId(4)));
        assert!(!reply.is_send_to(s));
        assert!(send.is_send_to(s));
        assert!(!send.is_send_to(ServerId::new(0u16, 2u32)));
        assert!(!send.is_reply_to(c));
    }

    #[test]
    fn envelope_detects_wan_crossings() {
        let msg = ServerMessage::Heartbeat {
            clock: Timestamp(1),
        };
        let local = Envelope::new(
            ServerId::new(0u16, 1u32),
            ServerId::new(0u16, 2u32),
            Timestamp(5),
            msg.clone(),
        );
        let wan = Envelope::new(
            ServerId::new(0u16, 1u32),
            ServerId::new(2u16, 1u32),
            Timestamp(5),
            msg,
        );
        assert!(!local.crosses_dc());
        assert!(wan.crosses_dc());
    }

    #[test]
    fn client_event_carries_request() {
        let ev = ClientEvent::Request {
            client: ClientId(1),
            request: ClientRequest::Get {
                key: Key(9),
                rdv: DependencyVector::zero(3),
            },
        };
        match ev {
            ClientEvent::Request { client, .. } => assert_eq!(client, ClientId(1)),
            _ => panic!("expected a request event"),
        }
    }
}
