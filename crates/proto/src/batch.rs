//! Per-destination coalescing of latency-insensitive server traffic.
//!
//! With `Config::replication_batching` enabled, a server does not put every replication
//! or garbage-collection message on the wire individually. Instead it routes them through
//! a [`MessageBatcher`]: batchable sends are buffered per destination and flushed once
//! per tick as a single [`ServerMessage::Batch`], so the network — and the receiving
//! server's per-message service time — is charged once per peer per tick instead of once
//! per write.
//!
//! What is batchable is deliberately narrow:
//!
//! * [`ServerMessage::Replicate`] — replication is asynchronous anyway; deferring it by
//!   at most one tick (one heartbeat interval, 1 ms in the paper's test-bed) is far below
//!   the WAN latencies it then crosses. Buffer order is preserved, so the
//!   timestamp-order FIFO guarantee the POCC protocol relies on carries over.
//! * [`ServerMessage::GcVector`] — garbage collection tolerates arbitrary delay.
//!
//! Everything else (heartbeats, slice traffic, stabilization vectors) passes through
//! untouched: heartbeats *must not* overtake buffered replication — a heartbeat carrying
//! clock `T` promises that everything originated locally up to `T` has been sent — which
//! is also why servers flush the batcher at the **start** of a tick, before emitting
//! heartbeats.

use crate::{ServerMessage, ServerOutput};
use pocc_types::ServerId;
use std::collections::BTreeMap;

/// Buffers batchable server-to-server messages per destination until the next flush.
///
/// A disabled batcher passes everything through, so the protocol code can route its
/// outputs unconditionally and the `replication_batching` knob stays a pure
/// configuration concern.
#[derive(Debug, Default)]
pub struct MessageBatcher {
    enabled: bool,
    /// Pending messages per destination. A `BTreeMap` keeps flush order deterministic.
    pending: BTreeMap<ServerId, Vec<ServerMessage>>,
}

impl MessageBatcher {
    /// Creates a batcher; a disabled one is a transparent pass-through.
    pub fn new(enabled: bool) -> Self {
        MessageBatcher {
            enabled,
            pending: BTreeMap::new(),
        }
    }

    /// Whether batching is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether this message kind may be deferred to the next tick.
    fn is_batchable(message: &ServerMessage) -> bool {
        matches!(
            message,
            ServerMessage::Replicate { .. } | ServerMessage::GcVector { .. }
        )
    }

    /// Routes one output through the batcher: a batchable send is absorbed into its
    /// destination's buffer (returning `None`), anything else comes back for immediate
    /// dispatch.
    pub fn stage_one(&mut self, output: ServerOutput) -> Option<ServerOutput> {
        if !self.enabled {
            return Some(output);
        }
        match output {
            ServerOutput::Send { to, message } if Self::is_batchable(&message) => {
                self.pending.entry(to).or_default().push(message);
                None
            }
            other => Some(other),
        }
    }

    /// Number of messages currently buffered across all destinations.
    pub fn pending_messages(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Drains the buffers: one [`ServerMessage::Batch`] per destination, in destination
    /// order. A destination with a single pending message gets it unwrapped — the batch
    /// envelope would be pure overhead.
    pub fn flush(&mut self) -> Vec<ServerOutput> {
        let pending = std::mem::take(&mut self.pending);
        pending
            .into_iter()
            .map(|(to, mut messages)| {
                let message = if messages.len() == 1 {
                    messages.pop().expect("one pending message")
                } else {
                    ServerMessage::Batch { messages }
                };
                ServerOutput::send(to, message)
            })
            .collect()
    }

    /// Drains the buffers into `outputs` (see [`MessageBatcher::flush`]), accounting
    /// each batch envelope in `metrics`: one `batches_sent` tick plus the envelope's
    /// wire overhead (the members themselves were accounted when they were staged).
    pub fn flush_into(
        &mut self,
        metrics: &mut crate::MetricsSnapshot,
        outputs: &mut Vec<ServerOutput>,
    ) {
        for out in self.flush() {
            if let ServerOutput::Send {
                message: ServerMessage::Batch { .. },
                ..
            } = &out
            {
                metrics.batches_sent += 1;
                metrics.bytes_sent += ServerMessage::BATCH_ENVELOPE_SIZE as u64;
            }
            outputs.push(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{ClientId, DependencyVector, Key, ReplicaId, Timestamp, Value, Version};

    /// Test helper: stages a batch of outputs one by one, returning the pass-throughs.
    fn stage_all(b: &mut MessageBatcher, outputs: Vec<ServerOutput>) -> Vec<ServerOutput> {
        outputs
            .into_iter()
            .filter_map(|output| b.stage_one(output))
            .collect()
    }

    fn replicate(ut: u64) -> ServerMessage {
        ServerMessage::Replicate {
            version: Version::new(
                Key(1),
                Value::from(ut),
                ReplicaId(0),
                Timestamp(ut),
                DependencyVector::zero(3),
            ),
        }
    }

    fn heartbeat() -> ServerMessage {
        ServerMessage::Heartbeat {
            clock: Timestamp(9),
        }
    }

    #[test]
    fn disabled_batcher_is_a_pass_through() {
        let mut b = MessageBatcher::new(false);
        let out = vec![ServerOutput::send(ServerId::new(1u16, 0u32), replicate(1))];
        let staged = stage_all(&mut b, out.clone());
        assert_eq!(staged, out);
        assert_eq!(b.pending_messages(), 0);
        assert!(b.flush().is_empty());
    }

    #[test]
    fn batchable_sends_are_absorbed_and_flushed_per_destination() {
        let mut b = MessageBatcher::new(true);
        let s1 = ServerId::new(1u16, 0u32);
        let s2 = ServerId::new(2u16, 0u32);
        let immediate = stage_all(
            &mut b,
            vec![
                ServerOutput::send(s1, replicate(1)),
                ServerOutput::send(s2, replicate(1)),
                ServerOutput::reply(
                    ClientId(7),
                    crate::ClientReply::Put {
                        update_time: Timestamp(1),
                    },
                ),
                ServerOutput::send(s1, replicate(2)),
            ],
        );
        // The reply passes through; the three replicates are buffered.
        assert_eq!(immediate.len(), 1);
        assert!(immediate[0].is_reply_to(ClientId(7)));
        assert_eq!(b.pending_messages(), 3);

        let flushed = b.flush();
        assert_eq!(flushed.len(), 2, "one output per destination");
        match &flushed[0] {
            ServerOutput::Send {
                to,
                message: ServerMessage::Batch { messages },
            } => {
                assert_eq!(*to, s1);
                // Buffer order (= timestamp order for replication) is preserved.
                let times: Vec<u64> = messages
                    .iter()
                    .map(|m| match m {
                        ServerMessage::Replicate { version } => version.update_time.as_micros(),
                        other => panic!("unexpected member {other:?}"),
                    })
                    .collect();
                assert_eq!(times, vec![1, 2]);
            }
            other => panic!("expected a batch to s1, got {other:?}"),
        }
        // A single pending message is sent unwrapped.
        assert!(matches!(
            &flushed[1],
            ServerOutput::Send {
                to,
                message: ServerMessage::Replicate { .. },
            } if *to == s2
        ));
        assert_eq!(b.pending_messages(), 0);
    }

    #[test]
    fn latency_sensitive_messages_pass_through() {
        let mut b = MessageBatcher::new(true);
        let s1 = ServerId::new(1u16, 0u32);
        let staged = stage_all(&mut b, vec![ServerOutput::send(s1, heartbeat())]);
        assert_eq!(staged.len(), 1, "heartbeats are never deferred");
        assert_eq!(b.pending_messages(), 0);
    }

    #[test]
    fn gc_vectors_are_batchable() {
        let mut b = MessageBatcher::new(true);
        let s1 = ServerId::new(0u16, 1u32);
        let gc = ServerMessage::GcVector {
            vector: DependencyVector::zero(3),
        };
        assert!(stage_all(&mut b, vec![ServerOutput::send(s1, gc)]).is_empty());
        assert_eq!(b.pending_messages(), 1);
        assert_eq!(b.flush().len(), 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// One step of an arbitrary staging script.
        #[derive(Clone, Debug)]
        enum Step {
            /// A batchable send: `replicate(ut)` or a GC vector.
            Batchable { dest: u8, ut: u64 },
            /// A latency-sensitive send (heartbeat).
            PassThrough { dest: u8 },
            /// A client reply.
            Reply { client: u64 },
        }

        fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
            proptest::collection::vec(
                prop_oneof![
                    (0u8..4, 1u64..1000).prop_map(|(dest, ut)| Step::Batchable { dest, ut }),
                    (0u8..4).prop_map(|dest| Step::PassThrough { dest }),
                    (0u64..8).prop_map(|client| Step::Reply { client }),
                ],
                0..40,
            )
        }

        fn dest_id(dest: u8) -> ServerId {
            ServerId::new(dest as u16, 0u32)
        }

        fn output_for(step: &Step) -> ServerOutput {
            match step {
                Step::Batchable { dest, ut } if ut % 2 == 0 => {
                    ServerOutput::send(dest_id(*dest), replicate(*ut))
                }
                Step::Batchable { dest, .. } => ServerOutput::send(
                    dest_id(*dest),
                    ServerMessage::GcVector {
                        vector: DependencyVector::zero(3),
                    },
                ),
                Step::PassThrough { dest } => ServerOutput::send(dest_id(*dest), heartbeat()),
                Step::Reply { client } => ServerOutput::reply(
                    ClientId(*client),
                    crate::ClientReply::Put {
                        update_time: Timestamp(1),
                    },
                ),
            }
        }

        proptest! {
            /// The flush-order contract: non-batchable outputs pass through in their
            /// original relative order; a flush emits at most one send per destination,
            /// in destination order; within each destination, batchable messages keep
            /// exact staging order; and nothing is lost, duplicated or re-addressed.
            #[test]
            fn flush_preserves_per_destination_order_and_loses_nothing(steps in arb_steps()) {
                let mut b = MessageBatcher::new(true);
                let outputs: Vec<ServerOutput> = steps.iter().map(output_for).collect();

                let expected_immediate: Vec<ServerOutput> = steps
                    .iter()
                    .filter(|s| !matches!(s, Step::Batchable { .. }))
                    .map(output_for)
                    .collect();
                let mut expected_buffered: BTreeMap<ServerId, Vec<ServerMessage>> =
                    BTreeMap::new();
                for step in &steps {
                    if let Step::Batchable { dest, .. } = step {
                        if let ServerOutput::Send { to, message } = output_for(step) {
                            prop_assert_eq!(to, dest_id(*dest));
                            expected_buffered.entry(to).or_default().push(message);
                        }
                    }
                }

                let immediate = stage_all(&mut b, outputs);
                prop_assert_eq!(&immediate, &expected_immediate);
                prop_assert_eq!(
                    b.pending_messages(),
                    expected_buffered.values().map(Vec::len).sum::<usize>()
                );

                let flushed = b.flush();
                prop_assert_eq!(flushed.len(), expected_buffered.len());
                for (out, (to, expected)) in flushed.iter().zip(&expected_buffered) {
                    // Flush unwraps single messages and envelopes the rest; either way
                    // the per-destination sequence must be the exact staging order.
                    let (sent_to, sent) = match out {
                        ServerOutput::Send { to, message: ServerMessage::Batch { messages } } => {
                            prop_assert!(messages.len() > 1, "envelopes are never singleton");
                            (to, messages.clone())
                        }
                        ServerOutput::Send { to, message } => (to, vec![message.clone()]),
                        other => panic!("reply in flush: {other:?}"),
                    };
                    prop_assert_eq!(sent_to, to);
                    prop_assert_eq!(&sent, expected);
                }

                // The flush drained everything; a second flush is a no-op.
                prop_assert_eq!(b.pending_messages(), 0);
                prop_assert!(b.flush().is_empty());
            }

            /// A disabled batcher is observationally a pass-through for every script.
            #[test]
            fn disabled_batcher_never_reorders_or_buffers(steps in arb_steps()) {
                let mut b = MessageBatcher::new(false);
                let outputs: Vec<ServerOutput> = steps.iter().map(output_for).collect();
                let staged = stage_all(&mut b, outputs.clone());
                prop_assert_eq!(staged, outputs);
                prop_assert_eq!(b.pending_messages(), 0);
                prop_assert!(b.flush().is_empty());
            }
        }
    }
}
