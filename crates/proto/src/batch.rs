//! Per-destination coalescing of latency-insensitive server traffic.
//!
//! With `Config::replication_batching` enabled, a server does not put every replication
//! or garbage-collection message on the wire individually. Instead it routes them through
//! a [`MessageBatcher`]: batchable sends are buffered per destination and flushed once
//! per tick as a single [`ServerMessage::Batch`], so the network — and the receiving
//! server's per-message service time — is charged once per peer per tick instead of once
//! per write.
//!
//! What is batchable is deliberately narrow:
//!
//! * [`ServerMessage::Replicate`] — replication is asynchronous anyway; deferring it by
//!   at most one tick (one heartbeat interval, 1 ms in the paper's test-bed) is far below
//!   the WAN latencies it then crosses. Buffer order is preserved, so the
//!   timestamp-order FIFO guarantee the POCC protocol relies on carries over.
//! * [`ServerMessage::GcVector`] — garbage collection tolerates arbitrary delay.
//!
//! Everything else (heartbeats, slice traffic, stabilization vectors) passes through
//! untouched: heartbeats *must not* overtake buffered replication — a heartbeat carrying
//! clock `T` promises that everything originated locally up to `T` has been sent — which
//! is also why servers flush the batcher at the **start** of a tick, before emitting
//! heartbeats.

use crate::{ServerMessage, ServerOutput};
use pocc_types::ServerId;
use std::collections::BTreeMap;

/// Buffers batchable server-to-server messages per destination until the next flush.
///
/// A disabled batcher passes everything through, so the protocol code can route its
/// outputs unconditionally and the `replication_batching` knob stays a pure
/// configuration concern.
#[derive(Debug, Default)]
pub struct MessageBatcher {
    enabled: bool,
    /// Pending messages per destination. A `BTreeMap` keeps flush order deterministic.
    pending: BTreeMap<ServerId, Vec<ServerMessage>>,
}

impl MessageBatcher {
    /// Creates a batcher; a disabled one is a transparent pass-through.
    pub fn new(enabled: bool) -> Self {
        MessageBatcher {
            enabled,
            pending: BTreeMap::new(),
        }
    }

    /// Whether batching is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether this message kind may be deferred to the next tick.
    fn is_batchable(message: &ServerMessage) -> bool {
        matches!(
            message,
            ServerMessage::Replicate { .. } | ServerMessage::GcVector { .. }
        )
    }

    /// Routes one output through the batcher: a batchable send is absorbed into its
    /// destination's buffer (returning `None`), anything else comes back for immediate
    /// dispatch.
    pub fn stage_one(&mut self, output: ServerOutput) -> Option<ServerOutput> {
        if !self.enabled {
            return Some(output);
        }
        match output {
            ServerOutput::Send { to, message } if Self::is_batchable(&message) => {
                self.pending.entry(to).or_default().push(message);
                None
            }
            other => Some(other),
        }
    }

    /// Number of messages currently buffered across all destinations.
    pub fn pending_messages(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Drains the buffers: one [`ServerMessage::Batch`] per destination, in destination
    /// order. A destination with a single pending message gets it unwrapped — the batch
    /// envelope would be pure overhead.
    pub fn flush(&mut self) -> Vec<ServerOutput> {
        let pending = std::mem::take(&mut self.pending);
        pending
            .into_iter()
            .map(|(to, mut messages)| {
                let message = if messages.len() == 1 {
                    messages.pop().expect("one pending message")
                } else {
                    ServerMessage::Batch { messages }
                };
                ServerOutput::send(to, message)
            })
            .collect()
    }

    /// Drains the buffers into `outputs` (see [`MessageBatcher::flush`]), accounting
    /// each batch envelope in `metrics`: one `batches_sent` tick plus the envelope's
    /// wire overhead (the members themselves were accounted when they were staged).
    pub fn flush_into(
        &mut self,
        metrics: &mut crate::MetricsSnapshot,
        outputs: &mut Vec<ServerOutput>,
    ) {
        for out in self.flush() {
            if let ServerOutput::Send {
                message: ServerMessage::Batch { .. },
                ..
            } = &out
            {
                metrics.batches_sent += 1;
                metrics.bytes_sent += ServerMessage::BATCH_ENVELOPE_SIZE as u64;
            }
            outputs.push(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{ClientId, DependencyVector, Key, ReplicaId, Timestamp, Value, Version};

    /// Test helper: stages a batch of outputs one by one, returning the pass-throughs.
    fn stage_all(b: &mut MessageBatcher, outputs: Vec<ServerOutput>) -> Vec<ServerOutput> {
        outputs
            .into_iter()
            .filter_map(|output| b.stage_one(output))
            .collect()
    }

    fn replicate(ut: u64) -> ServerMessage {
        ServerMessage::Replicate {
            version: Version::new(
                Key(1),
                Value::from(ut),
                ReplicaId(0),
                Timestamp(ut),
                DependencyVector::zero(3),
            ),
        }
    }

    fn heartbeat() -> ServerMessage {
        ServerMessage::Heartbeat {
            clock: Timestamp(9),
        }
    }

    #[test]
    fn disabled_batcher_is_a_pass_through() {
        let mut b = MessageBatcher::new(false);
        let out = vec![ServerOutput::send(ServerId::new(1u16, 0u32), replicate(1))];
        let staged = stage_all(&mut b, out.clone());
        assert_eq!(staged, out);
        assert_eq!(b.pending_messages(), 0);
        assert!(b.flush().is_empty());
    }

    #[test]
    fn batchable_sends_are_absorbed_and_flushed_per_destination() {
        let mut b = MessageBatcher::new(true);
        let s1 = ServerId::new(1u16, 0u32);
        let s2 = ServerId::new(2u16, 0u32);
        let immediate = stage_all(
            &mut b,
            vec![
                ServerOutput::send(s1, replicate(1)),
                ServerOutput::send(s2, replicate(1)),
                ServerOutput::reply(
                    ClientId(7),
                    crate::ClientReply::Put {
                        update_time: Timestamp(1),
                    },
                ),
                ServerOutput::send(s1, replicate(2)),
            ],
        );
        // The reply passes through; the three replicates are buffered.
        assert_eq!(immediate.len(), 1);
        assert!(immediate[0].is_reply_to(ClientId(7)));
        assert_eq!(b.pending_messages(), 3);

        let flushed = b.flush();
        assert_eq!(flushed.len(), 2, "one output per destination");
        match &flushed[0] {
            ServerOutput::Send {
                to,
                message: ServerMessage::Batch { messages },
            } => {
                assert_eq!(*to, s1);
                // Buffer order (= timestamp order for replication) is preserved.
                let times: Vec<u64> = messages
                    .iter()
                    .map(|m| match m {
                        ServerMessage::Replicate { version } => version.update_time.as_micros(),
                        other => panic!("unexpected member {other:?}"),
                    })
                    .collect();
                assert_eq!(times, vec![1, 2]);
            }
            other => panic!("expected a batch to s1, got {other:?}"),
        }
        // A single pending message is sent unwrapped.
        assert!(matches!(
            &flushed[1],
            ServerOutput::Send {
                to,
                message: ServerMessage::Replicate { .. },
            } if *to == s2
        ));
        assert_eq!(b.pending_messages(), 0);
    }

    #[test]
    fn latency_sensitive_messages_pass_through() {
        let mut b = MessageBatcher::new(true);
        let s1 = ServerId::new(1u16, 0u32);
        let staged = stage_all(&mut b, vec![ServerOutput::send(s1, heartbeat())]);
        assert_eq!(staged.len(), 1, "heartbeats are never deferred");
        assert_eq!(b.pending_messages(), 0);
    }

    #[test]
    fn gc_vectors_are_batchable() {
        let mut b = MessageBatcher::new(true);
        let s1 = ServerId::new(0u16, 1u32);
        let gc = ServerMessage::GcVector {
            vector: DependencyVector::zero(3),
        };
        assert!(stage_all(&mut b, vec![ServerOutput::send(s1, gc)]).is_empty());
        assert_eq!(b.pending_messages(), 1);
        assert_eq!(b.flush().len(), 1);
    }
}
