//! A compact binary codec for the wire messages.
//!
//! The threaded runtime serialises messages with this codec when crossing thread
//! boundaries, and the metadata-overhead benchmark uses it to measure the exact on-wire
//! cost of POCC's client-assisted dependency tracking (which the paper argues is only
//! linear in the number of data centers).
//!
//! The format is deliberately simple: little-endian fixed-width integers, length-prefixed
//! byte strings and vectors, one tag byte per enum variant. It is not self-describing and
//! both ends must agree on the number of data centers only implicitly (vectors carry their
//! own length).
//!
//! # Zero-copy and allocation discipline
//!
//! Decoding is zero-copy where the representation allows it: values are sliced out of the
//! input [`Bytes`] buffer (refcounted, no memcpy) and clock vectors are built directly
//! into their inline-capacity representation without an intermediate `Vec`. Encoding can
//! reuse a caller-owned [`BytesMut`] scratch buffer through the `encode_*_into` variants
//! (`buf.clear()` between messages keeps the allocation); the plain `encode_*` functions
//! remain the convenient one-shot form.
//!
//! Length prefixes are checked on encode: a vector of more than `u16::MAX` entries or a
//! payload of more than `u32::MAX` bytes is a codec error, never a silently truncated
//! (and therefore corrupt) wire message.

use crate::{ClientReply, ClientRequest, GetResponse, ServerMessage, TxId, TxItem};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pocc_types::{
    ClientId, ClockVector, DependencyVector, Error, Key, ReplicaId, Result, Timestamp, Value,
    Version, VersionVector,
};

// ---------------------------------------------------------------------------------------
// Primitive helpers
// ---------------------------------------------------------------------------------------

fn put_timestamp(buf: &mut BytesMut, ts: Timestamp) {
    buf.put_u64_le(ts.as_micros());
}

fn get_timestamp(buf: &mut Bytes) -> Result<Timestamp> {
    ensure(buf, 8)?;
    Ok(Timestamp::from_micros(buf.get_u64_le()))
}

fn put_key(buf: &mut BytesMut, key: Key) {
    buf.put_u64_le(key.raw());
}

fn get_key(buf: &mut Bytes) -> Result<Key> {
    ensure(buf, 8)?;
    Ok(Key::new(buf.get_u64_le()))
}

fn put_replica(buf: &mut BytesMut, r: ReplicaId) {
    buf.put_u16_le(r.0);
}

fn get_replica(buf: &mut Bytes) -> Result<ReplicaId> {
    ensure(buf, 2)?;
    Ok(ReplicaId(buf.get_u16_le()))
}

fn put_vector_entries(buf: &mut BytesMut, entries: &[Timestamp]) -> Result<()> {
    let len = u16::try_from(entries.len()).map_err(|_| Error::Codec {
        reason: format!(
            "clock vector with {} entries exceeds the u16 wire length prefix",
            entries.len()
        ),
    })?;
    buf.put_u16_le(len);
    for e in entries {
        put_timestamp(buf, *e);
    }
    Ok(())
}

/// Decodes a length-prefixed clock vector straight into the vector's inline-capacity
/// representation — no intermediate `Vec` for the deployment sizes of the paper. The
/// whole entry block is bounds-checked up front, so a hostile length prefix errors out
/// before anything is allocated.
fn get_clock_vector(buf: &mut Bytes) -> Result<ClockVector> {
    ensure(buf, 2)?;
    let len = buf.get_u16_le() as usize;
    ensure(buf, len * 8)?;
    ClockVector::try_from_fn(len, |_| Ok(Timestamp::from_micros(buf.get_u64_le())))
}

fn put_dep_vector(buf: &mut BytesMut, dv: &DependencyVector) -> Result<()> {
    put_vector_entries(buf, dv.as_slice())
}

fn get_dep_vector(buf: &mut Bytes) -> Result<DependencyVector> {
    Ok(DependencyVector(get_clock_vector(buf)?))
}

fn put_version_vector(buf: &mut BytesMut, vv: &VersionVector) -> Result<()> {
    put_vector_entries(buf, vv.as_slice())
}

fn get_version_vector(buf: &mut Bytes) -> Result<VersionVector> {
    Ok(VersionVector(get_clock_vector(buf)?))
}

/// Writes a `u32` element-count prefix, rejecting counts the prefix cannot represent.
fn put_count(buf: &mut BytesMut, len: usize, what: &str) -> Result<u32> {
    let len = u32::try_from(len).map_err(|_| Error::Codec {
        reason: format!("{what} count {len} exceeds the u32 wire length prefix"),
    })?;
    buf.put_u32_le(len);
    Ok(len)
}

fn put_bytes(buf: &mut BytesMut, data: &[u8]) -> Result<()> {
    put_count(buf, data.len(), "byte string")?;
    buf.put_slice(data);
    Ok(())
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes> {
    ensure(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    ensure(buf, len)?;
    Ok(buf.split_to(len))
}

fn put_opt_value(buf: &mut BytesMut, value: &Option<Value>) -> Result<()> {
    match value {
        Some(v) => {
            buf.put_u8(1);
            put_bytes(buf, v.as_slice())?;
        }
        None => buf.put_u8(0),
    }
    Ok(())
}

fn get_opt_value(buf: &mut Bytes) -> Result<Option<Value>> {
    ensure(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(Value(get_bytes(buf)?))),
        other => Err(Error::Codec {
            reason: format!("invalid Option<Value> tag {other}"),
        }),
    }
}

fn put_keys(buf: &mut BytesMut, keys: &[Key]) -> Result<()> {
    put_count(buf, keys.len(), "key list")?;
    for k in keys {
        put_key(buf, *k);
    }
    Ok(())
}

fn get_keys(buf: &mut Bytes) -> Result<Vec<Key>> {
    ensure(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        out.push(get_key(buf)?);
    }
    Ok(out)
}

fn put_version(buf: &mut BytesMut, v: &Version) -> Result<()> {
    put_key(buf, v.key);
    put_bytes(buf, v.value.as_slice())?;
    put_replica(buf, v.source_replica);
    put_timestamp(buf, v.update_time);
    put_dep_vector(buf, &v.deps)
}

fn get_version(buf: &mut Bytes) -> Result<Version> {
    let key = get_key(buf)?;
    let value = Value(get_bytes(buf)?);
    let source_replica = get_replica(buf)?;
    let update_time = get_timestamp(buf)?;
    let deps = get_dep_vector(buf)?;
    Ok(Version::new(key, value, source_replica, update_time, deps))
}

fn put_get_response(buf: &mut BytesMut, g: &GetResponse) -> Result<()> {
    put_opt_value(buf, &g.value)?;
    put_timestamp(buf, g.update_time);
    put_dep_vector(buf, &g.deps)?;
    put_replica(buf, g.source_replica);
    Ok(())
}

fn get_get_response(buf: &mut Bytes) -> Result<GetResponse> {
    Ok(GetResponse {
        value: get_opt_value(buf)?,
        update_time: get_timestamp(buf)?,
        deps: get_dep_vector(buf)?,
        source_replica: get_replica(buf)?,
    })
}

fn put_tx_items(buf: &mut BytesMut, items: &[TxItem]) -> Result<()> {
    put_count(buf, items.len(), "transaction item")?;
    for item in items {
        put_key(buf, item.key);
        put_get_response(buf, &item.response)?;
    }
    Ok(())
}

fn get_tx_items(buf: &mut Bytes) -> Result<Vec<TxItem>> {
    ensure(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        out.push(TxItem {
            key: get_key(buf)?,
            response: get_get_response(buf)?,
        });
    }
    Ok(out)
}

fn put_string(buf: &mut BytesMut, s: &str) -> Result<()> {
    put_bytes(buf, s.as_bytes())
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    let raw = get_bytes(buf)?;
    String::from_utf8(raw.to_vec()).map_err(|e| Error::Codec {
        reason: format!("invalid utf-8 string: {e}"),
    })
}

fn ensure(buf: &Bytes, needed: usize) -> Result<()> {
    if buf.remaining() < needed {
        Err(Error::Codec {
            reason: format!(
                "truncated message: needed {needed} more bytes, only {} available",
                buf.remaining()
            ),
        })
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------------------------
// ClientRequest
// ---------------------------------------------------------------------------------------

const REQ_GET: u8 = 1;
const REQ_PUT: u8 = 2;
const REQ_ROTX: u8 = 3;

/// Encodes a [`ClientRequest`] into a freshly allocated buffer.
pub fn encode_request(req: &ClientRequest) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(req.wire_size() + 16);
    encode_request_into(req, &mut buf)?;
    Ok(buf.freeze())
}

/// Encodes a [`ClientRequest`] by appending to a caller-owned scratch buffer.
///
/// Clearing and reusing one `BytesMut` across messages keeps the encode path
/// allocation-free once the buffer has grown to the working-set message size.
pub fn encode_request_into(req: &ClientRequest, buf: &mut BytesMut) -> Result<()> {
    match req {
        ClientRequest::Get { key, rdv } => {
            buf.put_u8(REQ_GET);
            put_key(buf, *key);
            put_dep_vector(buf, rdv)?;
        }
        ClientRequest::Put { key, value, dv } => {
            buf.put_u8(REQ_PUT);
            put_key(buf, *key);
            put_bytes(buf, value.as_slice())?;
            put_dep_vector(buf, dv)?;
        }
        ClientRequest::RoTx { keys, rdv } => {
            buf.put_u8(REQ_ROTX);
            put_keys(buf, keys)?;
            put_dep_vector(buf, rdv)?;
        }
    }
    Ok(())
}

/// Decodes a [`ClientRequest`].
pub fn decode_request(mut data: Bytes) -> Result<ClientRequest> {
    ensure(&data, 1)?;
    let tag = data.get_u8();
    let req = match tag {
        REQ_GET => ClientRequest::Get {
            key: get_key(&mut data)?,
            rdv: get_dep_vector(&mut data)?,
        },
        REQ_PUT => ClientRequest::Put {
            key: get_key(&mut data)?,
            value: Value(get_bytes(&mut data)?),
            dv: get_dep_vector(&mut data)?,
        },
        REQ_ROTX => ClientRequest::RoTx {
            keys: get_keys(&mut data)?,
            rdv: get_dep_vector(&mut data)?,
        },
        other => {
            return Err(Error::Codec {
                reason: format!("unknown ClientRequest tag {other}"),
            })
        }
    };
    expect_exhausted(&data)?;
    Ok(req)
}

// ---------------------------------------------------------------------------------------
// ClientReply
// ---------------------------------------------------------------------------------------

const REP_GET: u8 = 1;
const REP_PUT: u8 = 2;
const REP_ROTX: u8 = 3;
const REP_ABORT: u8 = 4;

/// Encodes a [`ClientReply`] into a freshly allocated buffer.
pub fn encode_reply(reply: &ClientReply) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(reply.wire_size() + 16);
    encode_reply_into(reply, &mut buf)?;
    Ok(buf.freeze())
}

/// Encodes a [`ClientReply`] by appending to a caller-owned scratch buffer
/// (see [`encode_request_into`] for the reuse contract).
pub fn encode_reply_into(reply: &ClientReply, buf: &mut BytesMut) -> Result<()> {
    match reply {
        ClientReply::Get(g) => {
            buf.put_u8(REP_GET);
            put_get_response(buf, g)?;
        }
        ClientReply::Put { update_time } => {
            buf.put_u8(REP_PUT);
            put_timestamp(buf, *update_time);
        }
        ClientReply::RoTx { items } => {
            buf.put_u8(REP_ROTX);
            put_tx_items(buf, items)?;
        }
        ClientReply::SessionAborted { reason } => {
            buf.put_u8(REP_ABORT);
            put_string(buf, reason)?;
        }
    }
    Ok(())
}

/// Decodes a [`ClientReply`].
pub fn decode_reply(mut data: Bytes) -> Result<ClientReply> {
    ensure(&data, 1)?;
    let tag = data.get_u8();
    let reply = match tag {
        REP_GET => ClientReply::Get(get_get_response(&mut data)?),
        REP_PUT => ClientReply::Put {
            update_time: get_timestamp(&mut data)?,
        },
        REP_ROTX => ClientReply::RoTx {
            items: get_tx_items(&mut data)?,
        },
        REP_ABORT => ClientReply::SessionAborted {
            reason: get_string(&mut data)?,
        },
        other => {
            return Err(Error::Codec {
                reason: format!("unknown ClientReply tag {other}"),
            })
        }
    };
    expect_exhausted(&data)?;
    Ok(reply)
}

// ---------------------------------------------------------------------------------------
// ServerMessage
// ---------------------------------------------------------------------------------------

const MSG_REPLICATE: u8 = 1;
const MSG_HEARTBEAT: u8 = 2;
const MSG_SLICE_REQ: u8 = 3;
const MSG_SLICE_RESP: u8 = 4;
const MSG_STABILIZATION: u8 = 5;
const MSG_GC: u8 = 6;
const MSG_BATCH: u8 = 7;
const MSG_SLICE_ABORT: u8 = 8;

fn put_server_message(buf: &mut BytesMut, msg: &ServerMessage) -> Result<()> {
    match msg {
        ServerMessage::Replicate { version } => {
            buf.put_u8(MSG_REPLICATE);
            put_version(buf, version)?;
        }
        ServerMessage::Heartbeat { clock } => {
            buf.put_u8(MSG_HEARTBEAT);
            put_timestamp(buf, *clock);
        }
        ServerMessage::SliceRequest {
            tx,
            client,
            keys,
            snapshot,
        } => {
            buf.put_u8(MSG_SLICE_REQ);
            buf.put_u64_le(tx.0);
            buf.put_u64_le(client.raw());
            put_keys(buf, keys)?;
            put_dep_vector(buf, snapshot)?;
        }
        ServerMessage::SliceResponse { tx, items } => {
            buf.put_u8(MSG_SLICE_RESP);
            buf.put_u64_le(tx.0);
            put_tx_items(buf, items)?;
        }
        ServerMessage::SliceAbort { tx } => {
            buf.put_u8(MSG_SLICE_ABORT);
            buf.put_u64_le(tx.0);
        }
        ServerMessage::StabilizationVector { vv } => {
            buf.put_u8(MSG_STABILIZATION);
            put_version_vector(buf, vv)?;
        }
        ServerMessage::GcVector { vector } => {
            buf.put_u8(MSG_GC);
            put_dep_vector(buf, vector)?;
        }
        ServerMessage::Batch { messages } => {
            buf.put_u8(MSG_BATCH);
            put_count(buf, messages.len(), "batch message")?;
            for inner in messages {
                debug_assert!(
                    !matches!(inner, ServerMessage::Batch { .. }),
                    "batches are flat; the batcher never nests them"
                );
                put_server_message(buf, inner)?;
            }
        }
    }
    Ok(())
}

/// Encodes a [`ServerMessage`] into a freshly allocated buffer.
pub fn encode_server_message(msg: &ServerMessage) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(msg.wire_size() + 16);
    encode_server_message_into(msg, &mut buf)?;
    Ok(buf.freeze())
}

/// Encodes a [`ServerMessage`] by appending to a caller-owned scratch buffer
/// (see [`encode_request_into`] for the reuse contract).
pub fn encode_server_message_into(msg: &ServerMessage, buf: &mut BytesMut) -> Result<()> {
    put_server_message(buf, msg)
}

/// `in_batch` is true while decoding the members of a batch: batches are flat, so a
/// nested `Batch` tag is a codec error (this also bounds decoder recursion on
/// adversarial input).
fn get_server_message(data: &mut Bytes, in_batch: bool) -> Result<ServerMessage> {
    ensure(data, 1)?;
    let tag = data.get_u8();
    let msg = match tag {
        MSG_REPLICATE => ServerMessage::Replicate {
            version: get_version(data)?,
        },
        MSG_HEARTBEAT => ServerMessage::Heartbeat {
            clock: get_timestamp(data)?,
        },
        MSG_SLICE_REQ => {
            ensure(data, 16)?;
            let tx = TxId(data.get_u64_le());
            let client = ClientId(data.get_u64_le());
            ServerMessage::SliceRequest {
                tx,
                client,
                keys: get_keys(data)?,
                snapshot: get_dep_vector(data)?,
            }
        }
        MSG_SLICE_RESP => {
            ensure(data, 8)?;
            let tx = TxId(data.get_u64_le());
            ServerMessage::SliceResponse {
                tx,
                items: get_tx_items(data)?,
            }
        }
        MSG_SLICE_ABORT => {
            ensure(data, 8)?;
            ServerMessage::SliceAbort {
                tx: TxId(data.get_u64_le()),
            }
        }
        MSG_STABILIZATION => ServerMessage::StabilizationVector {
            vv: get_version_vector(data)?,
        },
        MSG_GC => ServerMessage::GcVector {
            vector: get_dep_vector(data)?,
        },
        MSG_BATCH if !in_batch => {
            ensure(data, 4)?;
            let len = data.get_u32_le() as usize;
            // Every member consumes at least one byte, so the remaining buffer length
            // bounds how much a (possibly hostile) length prefix may preallocate.
            let mut messages = Vec::with_capacity(len.min(data.remaining()));
            for _ in 0..len {
                messages.push(get_server_message(data, true)?);
            }
            ServerMessage::Batch { messages }
        }
        MSG_BATCH => {
            return Err(Error::Codec {
                reason: "nested Batch message".into(),
            })
        }
        other => {
            return Err(Error::Codec {
                reason: format!("unknown ServerMessage tag {other}"),
            })
        }
    };
    Ok(msg)
}

/// Decodes a [`ServerMessage`].
pub fn decode_server_message(mut data: Bytes) -> Result<ServerMessage> {
    let msg = get_server_message(&mut data, false)?;
    expect_exhausted(&data)?;
    Ok(msg)
}

fn expect_exhausted(data: &Bytes) -> Result<()> {
    if data.has_remaining() {
        Err(Error::Codec {
            reason: format!("{} trailing bytes after message", data.remaining()),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            ClientRequest::Get {
                key: Key(7),
                rdv: dv(&[1, 2, 3]),
            },
            ClientRequest::Put {
                key: Key(9),
                value: Value::from("hello"),
                dv: dv(&[4, 0, 6]),
            },
            ClientRequest::RoTx {
                keys: vec![Key(1), Key(2), Key(3)],
                rdv: dv(&[0, 0, 0]),
            },
            ClientRequest::RoTx {
                keys: vec![],
                rdv: dv(&[]),
            },
        ];
        for req in reqs {
            let encoded = encode_request(&req).unwrap();
            assert_eq!(decode_request(encoded).unwrap(), req);
        }
    }

    #[test]
    fn reply_round_trips() {
        let replies = vec![
            ClientReply::Get(GetResponse {
                value: Some(Value::from("v")),
                update_time: Timestamp(9),
                deps: dv(&[1, 2, 3]),
                source_replica: ReplicaId(2),
            }),
            ClientReply::Get(GetResponse {
                value: None,
                update_time: Timestamp::ZERO,
                deps: dv(&[0, 0, 0]),
                source_replica: ReplicaId(0),
            }),
            ClientReply::Put {
                update_time: Timestamp(77),
            },
            ClientReply::RoTx {
                items: vec![TxItem {
                    key: Key(5),
                    response: GetResponse {
                        value: Some(Value::from("x")),
                        update_time: Timestamp(3),
                        deps: dv(&[1, 1, 1]),
                        source_replica: ReplicaId(1),
                    },
                }],
            },
            ClientReply::SessionAborted {
                reason: "partition suspected".into(),
            },
        ];
        for reply in replies {
            let encoded = encode_reply(&reply).unwrap();
            assert_eq!(decode_reply(encoded).unwrap(), reply);
        }
    }

    #[test]
    fn server_message_round_trips() {
        let msgs = vec![
            ServerMessage::Replicate {
                version: Version::new(
                    Key(1),
                    Value::from("abc"),
                    ReplicaId(2),
                    Timestamp(11),
                    dv(&[1, 2, 3]),
                ),
            },
            ServerMessage::Heartbeat {
                clock: Timestamp(123),
            },
            ServerMessage::SliceRequest {
                tx: TxId(5),
                client: ClientId(8),
                keys: vec![Key(1), Key(9)],
                snapshot: dv(&[4, 5, 6]),
            },
            ServerMessage::SliceResponse {
                tx: TxId(5),
                items: vec![],
            },
            ServerMessage::SliceAbort { tx: TxId(17) },
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![Timestamp(1), Timestamp(2)]),
            },
            ServerMessage::GcVector {
                vector: dv(&[9, 9, 9]),
            },
            ServerMessage::Batch {
                messages: vec![
                    ServerMessage::Replicate {
                        version: Version::new(
                            Key(2),
                            Value::from("xy"),
                            ReplicaId(1),
                            Timestamp(7),
                            dv(&[1, 2, 3]),
                        ),
                    },
                    ServerMessage::GcVector {
                        vector: dv(&[4, 5, 6]),
                    },
                ],
            },
            ServerMessage::Batch { messages: vec![] },
        ];
        for msg in msgs {
            let encoded = encode_server_message(&msg).unwrap();
            assert_eq!(decode_server_message(encoded).unwrap(), msg);
        }
    }

    #[test]
    fn nested_batches_are_rejected_by_the_decoder() {
        // Hand-craft a Batch containing a Batch: tag 7, len 1, tag 7, len 0.
        let mut raw = BytesMut::new();
        raw.put_u8(7);
        raw.put_u32_le(1);
        raw.put_u8(7);
        raw.put_u32_le(0);
        let err = decode_server_message(raw.freeze()).unwrap_err();
        assert!(err.to_string().contains("nested Batch"));
    }

    #[test]
    fn truncated_messages_are_rejected() {
        let req = ClientRequest::Put {
            key: Key(9),
            value: Value::from("hello"),
            dv: dv(&[4, 0, 6]),
        };
        let encoded = encode_request(&req).unwrap();
        for cut in 0..encoded.len() {
            let truncated = encoded.slice(0..cut);
            assert!(
                decode_request(truncated).is_err(),
                "truncation at {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let msg = ServerMessage::Heartbeat {
            clock: Timestamp(1),
        };
        let mut raw = BytesMut::from(&encode_server_message(&msg).unwrap()[..]);
        raw.put_u8(0xFF);
        assert!(decode_server_message(raw.freeze()).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(0xEE);
        assert!(decode_request(raw.clone().freeze()).is_err());
        assert!(decode_reply(raw.clone().freeze()).is_err());
        assert!(decode_server_message(raw.freeze()).is_err());
        assert!(decode_request(Bytes::new()).is_err());
    }

    #[test]
    fn encoded_size_tracks_wire_size_estimate() {
        let req = ClientRequest::Get {
            key: Key(7),
            rdv: dv(&[1, 2, 3]),
        };
        // The estimate does not count the 2-byte vector length prefix.
        assert_eq!(encode_request(&req).unwrap().len(), req.wire_size() + 2);
    }

    #[test]
    fn oversized_vector_is_a_codec_error_not_a_truncation() {
        // More entries than the u16 length prefix can carry: the old code silently
        // wrapped the length and produced a corrupt message; now it must error.
        let too_long = DependencyVector::from_entries(vec![Timestamp(1); u16::MAX as usize + 1]);
        let req = ClientRequest::Get {
            key: Key(1),
            rdv: too_long.clone(),
        };
        let err = encode_request(&req).unwrap_err();
        assert!(err.to_string().contains("u16"), "got: {err}");

        // The boundary value itself still encodes.
        let max = ClientRequest::Get {
            key: Key(1),
            rdv: DependencyVector::from_entries(vec![Timestamp(1); u16::MAX as usize]),
        };
        let encoded = encode_request(&max).unwrap();
        assert_eq!(decode_request(encoded).unwrap(), max);

        // The same guard protects replies and server messages through shared helpers.
        let msg = ServerMessage::GcVector { vector: too_long };
        assert!(encode_server_message(&msg).is_err());
    }

    #[test]
    fn truncated_replies_are_rejected_at_every_cut() {
        let reply = ClientReply::RoTx {
            items: vec![TxItem {
                key: Key(5),
                response: GetResponse {
                    value: Some(Value::from("payload")),
                    update_time: Timestamp(3),
                    deps: dv(&[1, 1, 1]),
                    source_replica: ReplicaId(1),
                },
            }],
        };
        let encoded = encode_reply(&reply).unwrap();
        for cut in 0..encoded.len() {
            assert!(
                decode_reply(encoded.slice(0..cut)).is_err(),
                "truncation at {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn truncated_server_messages_are_rejected_at_every_cut() {
        let msg = ServerMessage::Batch {
            messages: vec![
                ServerMessage::Replicate {
                    version: Version::new(
                        Key(2),
                        Value::from("xy"),
                        ReplicaId(1),
                        Timestamp(7),
                        dv(&[1, 2, 3]),
                    ),
                },
                ServerMessage::Heartbeat {
                    clock: Timestamp(123),
                },
            ],
        };
        let encoded = encode_server_message(&msg).unwrap();
        for cut in 0..encoded.len() {
            assert!(
                decode_server_message(encoded.slice(0..cut)).is_err(),
                "truncation at {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn scratch_buffer_reuse_produces_identical_bytes() {
        let msgs = [
            ServerMessage::Heartbeat {
                clock: Timestamp(123),
            },
            ServerMessage::GcVector {
                vector: dv(&[9, 9, 9]),
            },
            ServerMessage::Replicate {
                version: Version::new(
                    Key(1),
                    Value::from("abc"),
                    ReplicaId(2),
                    Timestamp(11),
                    dv(&[1, 2, 3]),
                ),
            },
        ];
        let mut scratch = BytesMut::with_capacity(256);
        for msg in &msgs {
            scratch.clear();
            encode_server_message_into(msg, &mut scratch).unwrap();
            assert_eq!(&scratch[..], &encode_server_message(msg).unwrap()[..]);
        }
    }

    #[test]
    fn decoded_value_shares_the_input_buffer() {
        // Zero-copy contract: the decoded value must be a slice of the wire buffer,
        // not a fresh copy of it.
        let req = ClientRequest::Put {
            key: Key(9),
            value: Value::from("zero-copy payload"),
            dv: dv(&[4, 0, 6]),
        };
        let encoded = encode_request(&req).unwrap();
        let base = encoded.as_slice().as_ptr() as usize;
        match decode_request(encoded.clone()).unwrap() {
            ClientRequest::Put { value, .. } => {
                let ptr = value.as_slice().as_ptr() as usize;
                assert!(
                    ptr >= base && ptr < base + encoded.len(),
                    "decoded value must point into the input buffer"
                );
            }
            other => panic!("unexpected decode {other:?}"),
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dv() -> impl Strategy<Value = DependencyVector> {
        proptest::collection::vec(0u64..u64::MAX / 2, 0..6)
            .prop_map(|v| DependencyVector::from_entries(v.into_iter().map(Timestamp).collect()))
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::from)
    }

    fn arb_request() -> impl Strategy<Value = ClientRequest> {
        prop_oneof![
            (any::<u64>(), arb_dv()).prop_map(|(k, rdv)| ClientRequest::Get { key: Key(k), rdv }),
            (any::<u64>(), arb_value(), arb_dv()).prop_map(|(k, value, dv)| ClientRequest::Put {
                key: Key(k),
                value,
                dv
            }),
            (proptest::collection::vec(any::<u64>(), 0..10), arb_dv()).prop_map(|(ks, rdv)| {
                ClientRequest::RoTx {
                    keys: ks.into_iter().map(Key).collect(),
                    rdv,
                }
            }),
        ]
    }

    fn arb_get_response() -> impl Strategy<Value = GetResponse> {
        (
            proptest::option::of(arb_value()),
            any::<u64>(),
            arb_dv(),
            0u16..8,
        )
            .prop_map(|(value, ut, deps, sr)| GetResponse {
                value,
                update_time: Timestamp(ut),
                deps,
                source_replica: ReplicaId(sr),
            })
    }

    fn arb_reply() -> impl Strategy<Value = ClientReply> {
        prop_oneof![
            arb_get_response().prop_map(ClientReply::Get),
            any::<u64>().prop_map(|t| ClientReply::Put {
                update_time: Timestamp(t)
            }),
            proptest::collection::vec((any::<u64>(), arb_get_response()), 0..8).prop_map(|items| {
                ClientReply::RoTx {
                    items: items
                        .into_iter()
                        .map(|(k, response)| TxItem {
                            key: Key(k),
                            response,
                        })
                        .collect(),
                }
            }),
            "[ -~]{0,40}".prop_map(|reason| ClientReply::SessionAborted { reason }),
        ]
    }

    fn arb_server_message() -> impl Strategy<Value = ServerMessage> {
        prop_oneof![
            (any::<u64>(), arb_value(), 0u16..8, any::<u64>(), arb_dv()).prop_map(
                |(k, v, sr, ut, deps)| ServerMessage::Replicate {
                    version: Version::new(Key(k), v, ReplicaId(sr), Timestamp(ut), deps),
                }
            ),
            any::<u64>().prop_map(|c| ServerMessage::Heartbeat {
                clock: Timestamp(c)
            }),
            (
                any::<u64>(),
                any::<u64>(),
                proptest::collection::vec(any::<u64>(), 0..10),
                arb_dv()
            )
                .prop_map(|(tx, client, keys, snapshot)| ServerMessage::SliceRequest {
                    tx: TxId(tx),
                    client: ClientId(client),
                    keys: keys.into_iter().map(Key).collect(),
                    snapshot,
                }),
            (
                any::<u64>(),
                proptest::collection::vec((any::<u64>(), arb_get_response()), 0..6)
            )
                .prop_map(|(tx, items)| ServerMessage::SliceResponse {
                    tx: TxId(tx),
                    items: items
                        .into_iter()
                        .map(|(k, response)| TxItem {
                            key: Key(k),
                            response,
                        })
                        .collect(),
                }),
            proptest::collection::vec(0u64..u64::MAX / 2, 0..6).prop_map(|v| {
                ServerMessage::StabilizationVector {
                    vv: VersionVector::from_entries(v.into_iter().map(Timestamp).collect()),
                }
            }),
            any::<u64>().prop_map(|tx| ServerMessage::SliceAbort { tx: TxId(tx) }),
            arb_dv().prop_map(|vector| ServerMessage::GcVector { vector }),
        ]
    }

    proptest! {
        #[test]
        fn prop_request_round_trip(req in arb_request()) {
            prop_assert_eq!(decode_request(encode_request(&req).unwrap()).unwrap(), req);
        }

        #[test]
        fn prop_reply_round_trip(reply in arb_reply()) {
            prop_assert_eq!(decode_reply(encode_reply(&reply).unwrap()).unwrap(), reply);
        }

        #[test]
        fn prop_server_message_round_trip(msg in arb_server_message()) {
            prop_assert_eq!(decode_server_message(encode_server_message(&msg).unwrap()).unwrap(), msg);
        }

        #[test]
        fn prop_decoder_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let bytes = Bytes::from(data);
            let _ = decode_request(bytes.clone());
            let _ = decode_reply(bytes.clone());
            let _ = decode_server_message(bytes);
        }

        #[test]
        fn prop_garbage_suffix_is_rejected(
            msg in arb_server_message(),
            suffix in proptest::collection::vec(any::<u8>(), 1..16)
        ) {
            // The codec is self-delimiting: any bytes past the end of a valid message
            // must be reported as trailing garbage, never silently consumed.
            let mut raw = BytesMut::from(&encode_server_message(&msg).unwrap()[..]);
            raw.put_slice(&suffix);
            prop_assert!(decode_server_message(raw.freeze()).is_err());
        }

        #[test]
        fn prop_scratch_encode_matches_one_shot(req in arb_request()) {
            let mut scratch = BytesMut::new();
            scratch.put_u8(0xAB); // pre-existing content: _into appends after it
            scratch.clear();
            encode_request_into(&req, &mut scratch).unwrap();
            prop_assert_eq!(&scratch[..], &encode_request(&req).unwrap()[..]);
        }
    }
}
