//! Request, reply and server-to-server message types.

use pocc_types::{
    ClientId, DependencyVector, Key, ReplicaId, Timestamp, Value, Version, VersionVector,
};
use serde::{Deserialize, Serialize};

/// Identifier of a read-only transaction, unique per coordinating server.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct TxId(pub u64);

impl TxId {
    /// The next transaction id.
    pub fn next(self) -> TxId {
        TxId(self.0 + 1)
    }
}

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// An operation issued by a client to the server it has a session with.
///
/// These correspond to the three operations of the paper's API (§II-C) carrying the
/// client-side dependency metadata of Algorithm 1: a GET and a RO-TX carry the read
/// dependency vector `RDV_c`, a PUT carries the full dependency vector `DV_c`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ClientRequest {
    /// `GET(key)` with the client's read vector.
    Get {
        /// The key to read.
        key: Key,
        /// The client's read vector: `RDV_c` for chain-head-serving protocols
        /// (Algorithm 1 line 2), the full `DV_c` for snapshot-serving protocols (both
        /// have one entry per data center, so the wire size is identical).
        rdv: DependencyVector,
    },
    /// `PUT(key, value)` with the client's dependency vector.
    Put {
        /// The key to write.
        key: Key,
        /// The value to associate with `key`.
        value: Value,
        /// The client's dependency vector `DV_c`, stored with the created version.
        dv: DependencyVector,
    },
    /// `RO-TX(keys)` with the client's read dependency vector.
    RoTx {
        /// The keys to read in a single causally consistent snapshot.
        keys: Vec<Key>,
        /// The client's read dependency vector `RDV_c`.
        rdv: DependencyVector,
    },
}

impl ClientRequest {
    /// Whether this request is an update (PUT).
    pub fn is_update(&self) -> bool {
        matches!(self, ClientRequest::Put { .. })
    }

    /// Approximate wire size of the request in bytes (key/value payloads plus metadata).
    pub fn wire_size(&self) -> usize {
        match self {
            ClientRequest::Get { rdv, .. } => 1 + 8 + rdv.wire_size(),
            ClientRequest::Put { value, dv, .. } => 1 + 8 + value.len() + dv.wire_size(),
            ClientRequest::RoTx { keys, rdv } => 1 + 4 + keys.len() * 8 + rdv.wire_size(),
        }
    }
}

/// The payload of a GET reply: `⟨value, update time, dependency vector, source replica⟩`
/// (Algorithm 1 line 3). `None` value means the key has never been written.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct GetResponse {
    /// The value read, or `None` if no version of the key exists.
    pub value: Option<Value>,
    /// Update time of the returned version (zero when no version exists).
    pub update_time: Timestamp,
    /// Dependency vector of the returned version (all-zero when no version exists).
    pub deps: DependencyVector,
    /// Source replica of the returned version (the serving replica when none exists).
    pub source_replica: ReplicaId,
}

/// One item returned by a read-only transaction.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TxItem {
    /// The key that was read.
    pub key: Key,
    /// The read result, to be folded into the client's dependency state exactly as a GET
    /// result would be (Algorithm 1 lines 17–19).
    pub response: GetResponse,
}

/// A reply sent by a server to a client.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ClientReply {
    /// Reply to a [`ClientRequest::Get`].
    Get(GetResponse),
    /// Reply to a [`ClientRequest::Put`]: the update time assigned to the new version.
    Put {
        /// Update time of the newly created version.
        update_time: Timestamp,
    },
    /// Reply to a [`ClientRequest::RoTx`].
    RoTx {
        /// One entry per requested key, in no particular order.
        items: Vec<TxItem>,
    },
    /// The server closed the session because a blocked request exceeded the partition
    /// detection timeout (§III-B). The client must re-initialise its session.
    SessionAborted {
        /// Human-readable reason.
        reason: String,
    },
}

impl ClientReply {
    /// Approximate wire size of the reply in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            ClientReply::Get(g) => {
                1 + g.value.as_ref().map_or(0, |v| v.len()) + 8 + g.deps.wire_size() + 2
            }
            ClientReply::Put { .. } => 1 + 8,
            ClientReply::RoTx { items } => {
                1 + items
                    .iter()
                    .map(|i| {
                        8 + i.response.value.as_ref().map_or(0, |v| v.len())
                            + 8
                            + i.response.deps.wire_size()
                            + 2
                    })
                    .sum::<usize>()
            }
            ClientReply::SessionAborted { reason } => 1 + reason.len(),
        }
    }
}

/// A message exchanged between servers.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ServerMessage {
    /// Asynchronous replication of a local update to a sibling replica of the same
    /// partition in another data center (Algorithm 2 lines 12–13). Sent in update-timestamp
    /// order.
    Replicate {
        /// The replicated version.
        version: Version,
    },
    /// Heartbeat carrying the sender's current clock, sent when the sender has not created
    /// a local update for the heartbeat interval `∆` (Algorithm 2 lines 19–26). Sent in
    /// clock order, interleaved consistently with replication messages.
    Heartbeat {
        /// The sender's clock value when the heartbeat was emitted.
        clock: Timestamp,
    },
    /// A transaction coordinator asking a local partition to read `keys` within snapshot
    /// `snapshot` (Algorithm 2 line 34, `SliceREQ`).
    SliceRequest {
        /// Coordinator-local transaction id, echoed in the response.
        tx: TxId,
        /// The client on whose behalf the transaction runs (for metrics and diagnostics).
        client: ClientId,
        /// The keys of this slice (all owned by the destination partition).
        keys: Vec<Key>,
        /// The transaction snapshot vector `TV`.
        snapshot: DependencyVector,
    },
    /// The reply to a [`ServerMessage::SliceRequest`] (Algorithm 2 line 47, `SliceRESP`).
    SliceResponse {
        /// The transaction id from the request.
        tx: TxId,
        /// One entry per requested key.
        items: Vec<TxItem>,
    },
    /// A participant telling the coordinator that a slice cannot be answered exactly: the
    /// transaction snapshot precedes versions the participant has already garbage
    /// collected ("snapshot too old"). The coordinator aborts the transaction and closes
    /// the client session rather than returning a read the snapshot cannot justify.
    SliceAbort {
        /// The transaction id from the request.
        tx: TxId,
    },
    /// Intra-DC exchange of version vectors used by Cure's stabilization protocol (GSS
    /// computation) and, infrequently, by HA-POCC.
    StabilizationVector {
        /// The sender's current version vector.
        vv: VersionVector,
    },
    /// Intra-DC exchange of the aggregate snapshot vectors used by the garbage-collection
    /// protocol (§IV-B): each server contributes the minimum snapshot vector of its active
    /// transactions (or its version vector when it has none).
    GcVector {
        /// The sender's contribution to the garbage-collection vector.
        vector: DependencyVector,
    },
    /// A per-destination batch of coalesced messages, sent when
    /// `Config::replication_batching` is enabled: instead of one message per write, a
    /// server buffers its replication and GC traffic and ships one `Batch` per peer per
    /// tick. Batches are flat — a `Batch` never contains another `Batch` — and preserve
    /// the order the batched messages were produced in, so the FIFO timestamp-order
    /// guarantee of the replication channel carries over.
    Batch {
        /// The coalesced messages, in send order.
        messages: Vec<ServerMessage>,
    },
}

impl ServerMessage {
    /// Wire overhead of a [`ServerMessage::Batch`] envelope: the tag byte plus the
    /// 4-byte member count (must match the codec's batch encoding).
    pub const BATCH_ENVELOPE_SIZE: usize = 1 + 4;

    /// Approximate wire size of the message in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            ServerMessage::Replicate { version } => 1 + version.wire_size(),
            ServerMessage::Heartbeat { .. } => 1 + 8,
            ServerMessage::SliceRequest { keys, snapshot, .. } => {
                1 + 8 + 8 + 4 + keys.len() * 8 + snapshot.wire_size()
            }
            ServerMessage::SliceResponse { items, .. } => {
                1 + 8
                    + items
                        .iter()
                        .map(|i| {
                            8 + i.response.value.as_ref().map_or(0, |v| v.len())
                                + 8
                                + i.response.deps.wire_size()
                                + 2
                        })
                        .sum::<usize>()
            }
            ServerMessage::SliceAbort { .. } => 1 + 8,
            ServerMessage::StabilizationVector { vv } => 1 + vv.wire_size(),
            ServerMessage::GcVector { vector } => 1 + vector.wire_size(),
            ServerMessage::Batch { messages } => {
                Self::BATCH_ENVELOPE_SIZE
                    + messages.iter().map(ServerMessage::wire_size).sum::<usize>()
            }
        }
    }

    /// Whether this message advances the receiver's version vector (replication and
    /// heartbeats do; coordination messages do not; a batch does if any batched message
    /// does).
    pub fn advances_version_vector(&self) -> bool {
        match self {
            ServerMessage::Replicate { .. } | ServerMessage::Heartbeat { .. } => true,
            ServerMessage::Batch { messages } => {
                messages.iter().any(ServerMessage::advances_version_vector)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(n: usize) -> DependencyVector {
        DependencyVector::zero(n)
    }

    #[test]
    fn tx_id_increments() {
        assert_eq!(TxId(0).next(), TxId(1));
        assert_eq!(TxId(41).next().to_string(), "tx42");
    }

    #[test]
    fn request_classification() {
        let get = ClientRequest::Get {
            key: Key(1),
            rdv: dv(3),
        };
        let put = ClientRequest::Put {
            key: Key(1),
            value: Value::from("v"),
            dv: dv(3),
        };
        assert!(!get.is_update());
        assert!(put.is_update());
    }

    #[test]
    fn request_wire_sizes_scale_with_metadata() {
        let get3 = ClientRequest::Get {
            key: Key(1),
            rdv: dv(3),
        };
        let get5 = ClientRequest::Get {
            key: Key(1),
            rdv: dv(5),
        };
        // The only difference is two extra vector entries (8 bytes each).
        assert_eq!(get5.wire_size() - get3.wire_size(), 16);

        let tx = ClientRequest::RoTx {
            keys: vec![Key(1), Key(2)],
            rdv: dv(3),
        };
        assert_eq!(tx.wire_size(), 1 + 4 + 16 + 24);
    }

    #[test]
    fn reply_wire_sizes_account_for_items() {
        let item = TxItem {
            key: Key(1),
            response: GetResponse {
                value: Some(Value::from("12345678")),
                update_time: Timestamp(1),
                deps: dv(3),
                source_replica: ReplicaId(0),
            },
        };
        let one = ClientReply::RoTx {
            items: vec![item.clone()],
        };
        let two = ClientReply::RoTx {
            items: vec![item.clone(), item],
        };
        assert_eq!(two.wire_size() - one.wire_size(), 8 + 8 + 8 + 24 + 2);
        assert_eq!(
            ClientReply::Put {
                update_time: Timestamp(1)
            }
            .wire_size(),
            9
        );
    }

    #[test]
    fn server_message_classification() {
        let hb = ServerMessage::Heartbeat {
            clock: Timestamp(5),
        };
        let stab = ServerMessage::StabilizationVector {
            vv: VersionVector::zero(3),
        };
        assert!(hb.advances_version_vector());
        assert!(!stab.advances_version_vector());
        assert_eq!(hb.wire_size(), 9);
        assert_eq!(stab.wire_size(), 25);
    }

    #[test]
    fn replicate_wire_size_includes_version_payload() {
        let v = Version::new(
            Key(1),
            Value::from("abcd"),
            ReplicaId(0),
            Timestamp(9),
            dv(3),
        );
        let msg = ServerMessage::Replicate { version: v.clone() };
        assert_eq!(msg.wire_size(), 1 + v.wire_size());
    }

    #[test]
    fn batch_wire_size_and_classification_aggregate_members() {
        let hb = ServerMessage::Heartbeat {
            clock: Timestamp(5),
        };
        let gc = ServerMessage::GcVector { vector: dv(3) };
        let batch = ServerMessage::Batch {
            messages: vec![hb.clone(), gc.clone()],
        };
        assert_eq!(batch.wire_size(), 1 + 4 + hb.wire_size() + gc.wire_size());
        assert!(batch.advances_version_vector(), "contains a heartbeat");
        let gc_only = ServerMessage::Batch { messages: vec![gc] };
        assert!(!gc_only.advances_version_vector());
    }
}
