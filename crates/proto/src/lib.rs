//! Wire messages and sans-IO plumbing shared by the POCC and Cure\* protocol crates.
//!
//! The protocol implementations in `pocc-protocol` and `pocc-cure` are *sans-IO* state
//! machines: they consume [`ClientRequest`]s and [`ServerMessage`]s and produce
//! [`ServerOutput`]s, without performing any network or timer calls themselves. Both the
//! discrete-event simulator (`pocc-sim`) and the threaded runtime (`pocc-runtime`) drive
//! the same state machines through these types.
//!
//! The crate also contains a compact hand-rolled binary [`codec`], used by the threaded
//! runtime to serialise messages across channel boundaries and by the benchmarks to
//! measure the exact metadata overhead of each message type — one of the claims of the
//! paper is that POCC's client-supplied metadata is only linear in the number of data
//! centers. When `Config::replication_batching` is on, servers coalesce replication/GC
//! traffic per destination through a [`MessageBatcher`] into one
//! [`ServerMessage::Batch`] per peer per tick.
//!
//! # Example
//!
//! Round-tripping a replication message through the wire codec:
//!
//! ```
//! use pocc_proto::{codec, ServerMessage};
//! use pocc_types::{DependencyVector, Key, ReplicaId, Timestamp, Value, Version};
//!
//! let message = ServerMessage::Replicate {
//!     version: Version::new(
//!         Key(7),
//!         Value::from("hello"),
//!         ReplicaId(0),
//!         Timestamp(42),
//!         DependencyVector::zero(3),
//!     ),
//! };
//! let encoded = codec::encode_server_message(&message).unwrap();
//! assert_eq!(codec::decode_server_message(encoded).unwrap(), message);
//! ```
//!
//! Coalescing replication traffic with the batcher:
//!
//! ```
//! use pocc_proto::{MessageBatcher, ServerMessage, ServerOutput};
//! use pocc_types::{DependencyVector, Key, ReplicaId, ServerId, Timestamp, Value, Version};
//!
//! let mut batcher = MessageBatcher::new(true);
//! let sibling = ServerId::new(1u16, 0u32);
//! for t in [1, 2, 3] {
//!     let version = Version::new(
//!         Key(t),
//!         Value::from(t),
//!         ReplicaId(0),
//!         Timestamp(t),
//!         DependencyVector::zero(3),
//!     );
//!     let staged = batcher.stage_one(ServerOutput::send(
//!         sibling,
//!         ServerMessage::Replicate { version },
//!     ));
//!     assert!(staged.is_none(), "replication is buffered until the next tick");
//! }
//! // The tick flushes one batch per destination, preserving send order.
//! let flushed = batcher.flush();
//! assert_eq!(flushed.len(), 1);
//! assert!(matches!(
//!     &flushed[0],
//!     ServerOutput::Send { message: ServerMessage::Batch { messages }, .. }
//!         if messages.len() == 3
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
mod batch;
pub mod codec;
mod messages;
mod output;

pub use api::{
    InstrumentedServer, MetricsSnapshot, ProtocolClient, ProtocolServer, ServerIntrospect,
};
pub use batch::MessageBatcher;
pub use messages::{ClientReply, ClientRequest, GetResponse, ServerMessage, TxId, TxItem};
pub use output::{ClientEvent, Envelope, ServerOutput};

/// Test helper: matches a reply (typically the `Option<ClientReply>` extracted from a
/// server's outputs) against the expected pattern, evaluating to the arm's value, and
/// panics with the unexpected reply otherwise.
///
/// Replaces the `other => panic!("unexpected reply {other:?}")` arms that every protocol
/// crate's server tests used to copy:
///
/// ```
/// use pocc_proto::{expect_reply, ClientReply};
/// use pocc_types::Timestamp;
///
/// let reply = Some(ClientReply::Put { update_time: Timestamp(42) });
/// let ut = expect_reply!(reply, Some(ClientReply::Put { update_time }) => update_time);
/// assert_eq!(ut, Timestamp(42));
/// ```
#[macro_export]
macro_rules! expect_reply {
    ($reply:expr, $pattern:pat => $arm:expr $(,)?) => {
        match $reply {
            $pattern => $arm,
            other => panic!("unexpected reply {other:?}"),
        }
    };
}
