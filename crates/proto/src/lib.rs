//! Wire messages and sans-IO plumbing shared by the POCC and Cure\* protocol crates.
//!
//! The protocol implementations in `pocc-protocol` and `pocc-cure` are *sans-IO* state
//! machines: they consume [`ClientRequest`]s and [`ServerMessage`]s and produce
//! [`ServerOutput`]s, without performing any network or timer calls themselves. Both the
//! discrete-event simulator (`pocc-sim`) and the threaded runtime (`pocc-runtime`) drive
//! the same state machines through these types.
//!
//! The crate also contains a compact hand-rolled binary [`codec`], used by the threaded
//! runtime to serialise messages across channel boundaries and by the benchmarks to
//! measure the exact metadata overhead of each message type — one of the claims of the
//! paper is that POCC's client-supplied metadata is only linear in the number of data
//! centers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod codec;
mod messages;
mod output;

pub use api::{MetricsSnapshot, ProtocolClient, ProtocolServer};
pub use messages::{ClientReply, ClientRequest, GetResponse, ServerMessage, TxId, TxItem};
pub use output::{ClientEvent, Envelope, ServerOutput};
