//! POCC — the Optimistic Causal Consistency protocol.
//!
//! This crate is the reproduction of the paper's primary contribution: the client and
//! server state machines of Algorithms 1 and 2 of *"Optimistic Causal Consistency for
//! Geo-Replicated Key-Value Stores"* (ICDCS 2017).
//!
//! The crate is *sans-IO*: [`PoccServer`] consumes client requests and server messages and
//! returns [`pocc_proto::ServerOutput`]s; it never touches the network or sleeps. The same
//! state machine is driven by the deterministic simulator (`pocc-sim`), by the threaded
//! runtime (`pocc-runtime`) and by the unit tests in this crate.
//!
//! # The optimistic protocol in one paragraph
//!
//! A POCC server always returns the *freshest* version of an item it has received, even if
//! that version's causal dependencies have not yet been installed locally. Consistency is
//! preserved by a client-assisted check: every client ships a read-dependency vector
//! (`RDV`) with each read and a dependency vector (`DV`) with each write; the server
//! compares the read-dependency vector against its own version vector and, if it has not
//! yet received everything the client depends on, it *parks* the request until the missing
//! replication traffic (or a heartbeat proving nothing is missing) arrives. Because
//! updates are replicated in timestamp order over FIFO channels this wait is rare and
//! short during normal operation, which is the bet the paper's evaluation quantifies.
//!
//! # Example
//!
//! ```
//! use pocc_clock::ManualClock;
//! use pocc_protocol::{Client, PoccServer};
//! use pocc_proto::{ClientReply, ProtocolClient, ProtocolServer, ServerOutput};
//! use pocc_types::{ClientId, Config, Key, ServerId, Timestamp, Value};
//!
//! // A single-partition, single-DC deployment: the smallest possible POCC system.
//! let config = Config::builder()
//!     .num_replicas(1)
//!     .num_partitions(1)
//!     .build()
//!     .unwrap();
//! let clock = ManualClock::new(Timestamp::from_millis(1));
//! let server_id = ServerId::new(0u16, 0u32);
//! let mut server = PoccServer::new(server_id, config.clone(), clock.clone());
//! let mut client = Client::new(ClientId(1), server_id, config.num_replicas);
//!
//! // Write, then read back through the protocol.
//! let put = client.put(Key(42), Value::from("hello"));
//! let outputs = server.handle_client_request(client.client_id(), put);
//! # let mut update_time = None;
//! for out in &outputs {
//!     if let ServerOutput::Reply { reply, .. } = out {
//!         client.process_reply(reply).unwrap();
//! #       if let ClientReply::Put { update_time: ut } = reply { update_time = Some(*ut); }
//!     }
//! }
//!
//! let get = client.get(Key(42));
//! let outputs = server.handle_client_request(client.client_id(), get);
//! match &outputs[0] {
//!     ServerOutput::Reply { reply: ClientReply::Get(resp), .. } => {
//!         assert_eq!(resp.value.as_ref().unwrap().as_slice(), b"hello");
//!     }
//!     other => panic!("unexpected output {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod server;

pub use client::Client;
pub use server::{PoccPolicy, PoccServer, ServerStatus};

pub use pocc_engine::{BlockReason, PendingOp};
pub use pocc_proto::{ProtocolClient, ProtocolServer};
