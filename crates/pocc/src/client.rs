//! The client session state machine (Algorithm 1 of the paper).
//!
//! A client keeps two vectors with one entry per data center:
//!
//! * `DV` — the *dependency vector*: the newest item per data center the client depends
//!   on, through reads **and** its own writes. It is shipped with every PUT and stored in
//!   the created version, so that later readers inherit the dependency.
//! * `RDV` — the *read dependency vector*: the transitive dependencies established through
//!   reads only (the entry-wise maximum of the dependency vectors of every item the client
//!   has read). It is shipped with every GET and RO-TX so the server can check whether its
//!   state is consistent with the client's history.
//!
//! The same client code is used against POCC and Cure\* servers: the paper's comparison is
//! fair precisely because both systems exchange the same client-side metadata.

use pocc_proto::{ClientReply, ClientRequest, GetResponse, ProtocolClient};
use pocc_types::{ClientId, DependencyVector, Error, Key, Result, ServerId, Value};

/// A client session (Algorithm 1).
#[derive(Clone, Debug)]
pub struct Client {
    id: ClientId,
    home: ServerId,
    /// `DV_c`: dependencies established through both reads and writes.
    dv: DependencyVector,
    /// `RDV_c`: dependencies established through reads (transitively).
    rdv: DependencyVector,
    /// Ship the full `DV_c` with GETs instead of `RDV_c` (see [`Client::new_snapshot_reads`]).
    snapshot_reads: bool,
    /// Number of operations issued in this session (diagnostics only).
    ops_issued: u64,
    /// Whether the server aborted this session (partition recovery, §III-B).
    aborted: bool,
}

impl Client {
    /// Creates a new session for `id`, attached to server `home`, in a deployment of
    /// `num_replicas` data centers. GETs ship `RDV_c`, as in Algorithm 1 — the right
    /// metadata for chain-head-serving protocols (POCC, HA-POCC).
    pub fn new(id: ClientId, home: ServerId, num_replicas: usize) -> Self {
        Client {
            id,
            home,
            dv: DependencyVector::zero(num_replicas),
            rdv: DependencyVector::zero(num_replicas),
            snapshot_reads: false,
            ops_issued: 0,
            aborted: false,
        }
    }

    /// Creates a session whose GETs ship the full dependency vector `DV_c` instead of
    /// `RDV_c`, for protocols that serve reads from a *snapshot* (Cure\*, and the Adaptive
    /// protocol's stable fall-back) rather than from the head of the version chain.
    ///
    /// A snapshot read returns the freshest version *covered by the request vector* (plus
    /// the GSS and locally originated versions), so session guarantees require that
    /// vector to cover every item the client has read or written — `RDV_c` covers only
    /// their dependencies. This is the same argument that makes [`Client::ro_tx`] ship
    /// `DV_c` (see its comment); both vectors have one entry per data center, so the
    /// choice does not change the wire size.
    pub fn new_snapshot_reads(id: ClientId, home: ServerId, num_replicas: usize) -> Self {
        Client {
            snapshot_reads: true,
            ..Client::new(id, home, num_replicas)
        }
    }

    /// The client's current dependency vector (`DV_c`).
    pub fn dependency_vector(&self) -> &DependencyVector {
        &self.dv
    }

    /// The client's current read dependency vector (`RDV_c`).
    pub fn read_dependency_vector(&self) -> &DependencyVector {
        &self.rdv
    }

    /// Number of operations issued in this session.
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }

    /// Whether the server closed this session (the client must create a new [`Client`],
    /// which is exactly the session re-initialisation of the recovery procedure).
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    /// Re-initialises the session after an abort, dropping all accumulated dependencies.
    ///
    /// This models the pessimistic fall-back of §III-B: the new session may not observe
    /// versions read or written by the old one.
    pub fn reinitialize(&mut self) {
        let m = self.dv.len();
        self.dv = DependencyVector::zero(m);
        self.rdv = DependencyVector::zero(m);
        self.aborted = false;
    }

    /// Folds the result of a read (GET or one item of a RO-TX) into the dependency state
    /// (Algorithm 1 lines 4–6).
    fn track_read(&mut self, resp: &GetResponse) {
        if resp.value.is_none() {
            // Reading a key that has never been written establishes no dependency.
            return;
        }
        // RDVc <- max{RDVc, DV_of_item}: transitive dependencies through the read item.
        self.rdv.join(&resp.deps);
        // DVc <- max{RDVc, DVc}.
        self.dv.join(&self.rdv);
        // DVc[sr] <- max{DVc[sr], ut}: the direct dependency on the item itself.
        self.dv.advance(resp.source_replica, resp.update_time);
    }
}

impl ProtocolClient for Client {
    fn client_id(&self) -> ClientId {
        self.id
    }

    fn home_server(&self) -> ServerId {
        self.home
    }

    fn get(&self, key: Key) -> ClientRequest {
        // Chain-head protocols need only the read dependencies (Algorithm 1 line 2);
        // snapshot-serving protocols need the whole session history in the vector (see
        // `new_snapshot_reads`).
        let rdv = if self.snapshot_reads {
            self.dv.clone()
        } else {
            self.rdv.clone()
        };
        ClientRequest::Get { key, rdv }
    }

    fn put(&self, key: Key, value: Value) -> ClientRequest {
        ClientRequest::Put {
            key,
            value,
            dv: self.dv.clone(),
        }
    }

    fn ro_tx(&self, keys: Vec<Key>) -> ClientRequest {
        // Algorithm 1 line 15 ships RDV_c with a RO-TX. RDV, however, does not cover the
        // update times of items the client itself has read or written (only their
        // dependencies), while the correctness argument of the paper's appendix relies on
        // the snapshot including "every item read or written by c". We therefore ship the
        // full dependency vector DV_c (which dominates RDV_c): the snapshot vector computed
        // by the coordinator then covers the whole session history, at the cost of a
        // slightly larger wait window on the participant partitions (bounded by the clock
        // skew plus one heartbeat interval). See DESIGN.md §5 for the rationale.
        ClientRequest::RoTx {
            keys,
            rdv: self.dv.clone(),
        }
    }

    fn process_reply(&mut self, reply: &ClientReply) -> Result<()> {
        self.ops_issued += 1;
        match reply {
            ClientReply::Get(resp) => {
                self.track_read(resp);
                Ok(())
            }
            ClientReply::Put { update_time } => {
                // DVc[m] <- ut: dependency on the client's own write at the local replica
                // (Algorithm 1 line 12). The write is applied by the home server, so the
                // entry to advance is the home server's replica.
                self.dv.advance(self.home.replica, *update_time);
                Ok(())
            }
            ClientReply::RoTx { items } => {
                // Each returned item is tracked as if it were the result of a GET
                // (Algorithm 1 lines 17–19).
                for item in items {
                    self.track_read(&item.response);
                }
                Ok(())
            }
            ClientReply::SessionAborted { reason } => {
                self.aborted = true;
                Err(Error::SessionAborted {
                    client: self.id,
                    reason: reason.clone(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_proto::TxItem;
    use pocc_types::{ReplicaId, Timestamp};

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    fn get_response(ut: u64, sr: u16, deps: &[u64]) -> GetResponse {
        GetResponse {
            value: Some(Value::from(ut)),
            update_time: Timestamp(ut),
            deps: dv(deps),
            source_replica: ReplicaId(sr),
        }
    }

    fn client() -> Client {
        Client::new(ClientId(1), ServerId::new(0u16, 0u32), 3)
    }

    #[test]
    fn new_client_has_zero_dependencies() {
        let c = client();
        assert_eq!(c.dependency_vector(), &dv(&[0, 0, 0]));
        assert_eq!(c.read_dependency_vector(), &dv(&[0, 0, 0]));
        assert_eq!(c.client_id(), ClientId(1));
        assert_eq!(c.home_server(), ServerId::new(0u16, 0u32));
        assert!(!c.is_aborted());
        assert_eq!(c.ops_issued(), 0);
    }

    #[test]
    fn requests_carry_the_right_vectors() {
        let mut c = client();
        c.process_reply(&ClientReply::Get(get_response(10, 1, &[5, 0, 0])))
            .unwrap();
        // RDV contains only the *dependencies* of the read item; DV also contains the item.
        match c.get(Key(1)) {
            ClientRequest::Get { rdv, .. } => assert_eq!(rdv, dv(&[5, 0, 0])),
            _ => unreachable!(),
        }
        match c.put(Key(1), Value::from("x")) {
            ClientRequest::Put { dv: d, .. } => assert_eq!(d, dv(&[5, 10, 0])),
            _ => unreachable!(),
        }
        match c.ro_tx(vec![Key(1), Key(2)]) {
            ClientRequest::RoTx { rdv, keys } => {
                // RO-TX requests carry the full dependency vector (see `ro_tx`).
                assert_eq!(rdv, dv(&[5, 10, 0]));
                assert_eq!(keys.len(), 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn get_reply_updates_rdv_with_deps_and_dv_with_item() {
        let mut c = client();
        c.process_reply(&ClientReply::Get(get_response(20, 2, &[7, 3, 0])))
            .unwrap();
        assert_eq!(c.read_dependency_vector(), &dv(&[7, 3, 0]));
        assert_eq!(c.dependency_vector(), &dv(&[7, 3, 20]));
        assert_eq!(c.ops_issued(), 1);
    }

    #[test]
    fn reading_a_missing_key_establishes_no_dependency() {
        let mut c = client();
        let resp = GetResponse {
            value: None,
            update_time: Timestamp::ZERO,
            deps: dv(&[0, 0, 0]),
            source_replica: ReplicaId(0),
        };
        c.process_reply(&ClientReply::Get(resp)).unwrap();
        assert_eq!(c.dependency_vector(), &dv(&[0, 0, 0]));
        assert_eq!(c.read_dependency_vector(), &dv(&[0, 0, 0]));
    }

    #[test]
    fn put_reply_updates_local_entry_of_dv_only() {
        let mut c = client();
        c.process_reply(&ClientReply::Put {
            update_time: Timestamp(33),
        })
        .unwrap();
        assert_eq!(c.dependency_vector(), &dv(&[33, 0, 0]));
        assert_eq!(c.read_dependency_vector(), &dv(&[0, 0, 0]));
    }

    #[test]
    fn dependencies_accumulate_monotonically() {
        let mut c = client();
        c.process_reply(&ClientReply::Get(get_response(20, 1, &[7, 3, 0])))
            .unwrap();
        c.process_reply(&ClientReply::Get(get_response(5, 0, &[1, 1, 1])))
            .unwrap();
        // Older reads never shrink the vectors.
        assert_eq!(c.read_dependency_vector(), &dv(&[7, 3, 1]));
        assert_eq!(c.dependency_vector(), &dv(&[7, 20, 1]));
    }

    #[test]
    fn rotx_reply_tracks_every_item() {
        let mut c = client();
        let reply = ClientReply::RoTx {
            items: vec![
                TxItem {
                    key: Key(1),
                    response: get_response(10, 0, &[0, 4, 0]),
                },
                TxItem {
                    key: Key(2),
                    response: get_response(30, 2, &[0, 0, 9]),
                },
            ],
        };
        c.process_reply(&reply).unwrap();
        assert_eq!(c.read_dependency_vector(), &dv(&[0, 4, 9]));
        assert_eq!(c.dependency_vector(), &dv(&[10, 4, 30]));
    }

    #[test]
    fn paper_proposition_1_invariant_holds_through_the_client() {
        // If a client reads X and then writes Y, then Y.DV[X.sr] >= X.ut (Proposition 1).
        let mut c = client();
        let x = get_response(42, 1, &[3, 0, 0]);
        c.process_reply(&ClientReply::Get(x.clone())).unwrap();
        match c.put(Key(9), Value::from("y")) {
            ClientRequest::Put { dv: deps, .. } => {
                assert!(deps.get(ReplicaId(1)) >= x.update_time);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn session_abort_marks_the_client_and_reinitialize_clears_state() {
        let mut c = client();
        c.process_reply(&ClientReply::Get(get_response(20, 1, &[7, 3, 0])))
            .unwrap();
        let err = c
            .process_reply(&ClientReply::SessionAborted {
                reason: "partition".into(),
            })
            .unwrap_err();
        assert!(matches!(err, Error::SessionAborted { .. }));
        assert!(c.is_aborted());
        c.reinitialize();
        assert!(!c.is_aborted());
        assert_eq!(c.dependency_vector(), &dv(&[0, 0, 0]));
        assert_eq!(c.read_dependency_vector(), &dv(&[0, 0, 0]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pocc_types::{ReplicaId, Timestamp};
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Step {
        Read { ut: u64, sr: u16, deps: Vec<u64> },
        Write { ut: u64 },
    }

    fn arb_step() -> impl Strategy<Value = Step> {
        prop_oneof![
            (
                1u64..1_000,
                0u16..3,
                proptest::collection::vec(0u64..1_000, 3)
            )
                .prop_map(|(ut, sr, deps)| Step::Read { ut, sr, deps }),
            (1u64..1_000).prop_map(|ut| Step::Write { ut }),
        ]
    }

    proptest! {
        /// The client's vectors only ever grow, and DV always dominates RDV restricted to
        /// read-established dependencies.
        #[test]
        fn prop_client_vectors_grow_monotonically(steps in proptest::collection::vec(arb_step(), 0..50)) {
            let mut c = Client::new(ClientId(7), ServerId::new(1u16, 0u32), 3);
            let mut prev_dv = c.dependency_vector().clone();
            let mut prev_rdv = c.read_dependency_vector().clone();
            for step in steps {
                match step {
                    Step::Read { ut, sr, deps } => {
                        let resp = GetResponse {
                            value: Some(Value::from(ut)),
                            update_time: Timestamp(ut),
                            deps: DependencyVector::from_entries(
                                deps.into_iter().map(Timestamp).collect()),
                            source_replica: ReplicaId(sr),
                        };
                        c.process_reply(&ClientReply::Get(resp)).unwrap();
                    }
                    Step::Write { ut } => {
                        c.process_reply(&ClientReply::Put { update_time: Timestamp(ut) }).unwrap();
                    }
                }
                prop_assert!(c.dependency_vector().dominates(&prev_dv));
                prop_assert!(c.read_dependency_vector().dominates(&prev_rdv));
                prop_assert!(c.dependency_vector().dominates(c.read_dependency_vector()));
                prev_dv = c.dependency_vector().clone();
                prev_rdv = c.read_dependency_vector().clone();
            }
        }
    }
}
