//! The POCC server (Algorithm 2 of the paper) as a visibility policy over the shared
//! protocol engine.

use pocc_clock::Clock;
use pocc_engine::{EngineCore, PendingOp, ProtocolEngine, ReadMode, VisibilityPolicy};
use pocc_proto::{ClientRequest, ServerOutput};
use pocc_storage::ShardedStore;
use pocc_types::{ClientId, Config, PartitionId, ReplicaId, ServerId, Timestamp, VersionVector};

/// An observability snapshot of a POCC server's internal state.
#[derive(Clone, Debug)]
pub struct ServerStatus {
    /// The server's version vector.
    pub version_vector: VersionVector,
    /// Currently parked operations.
    pub pending: Vec<PendingOp>,
    /// Read-only transactions currently being coordinated.
    pub active_transactions: usize,
    /// Storage statistics.
    pub store: pocc_storage::StoreStats,
}

/// The optimistic visibility policy (Algorithm 2): a GET returns the *freshest* version
/// the server has received — stable or not — and parks when the client's dependencies
/// have not been installed yet; PUTs optionally wait for their dependencies; read-only
/// transactions read from `VV ∨ RDV`; garbage collection runs the vector exchange of
/// §IV-B.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoccPolicy;

impl<C: Clock> VisibilityPolicy<C> for PoccPolicy {
    fn handle_client_request(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        match request {
            ClientRequest::Get { key, rdv } => {
                // Algorithm 2 lines 2–4: serve the chain head once the client's remote
                // dependencies are covered, park otherwise.
                if core.covers_remote_deps(&rdv) {
                    let out = core.serve_get_latest(client, key);
                    outputs.push(out);
                } else {
                    core.park_get(client, key, rdv, ReadMode::Latest);
                }
            }
            ClientRequest::Put { key, value, dv } => {
                // Lines 6–15, with the dependency wait configurable as in the paper's
                // evaluation.
                if !core.config.put_waits_for_dependencies || core.covers_remote_deps(&dv) {
                    core.serve_put(client, key, value, dv, &mut outputs);
                } else {
                    core.park_put(client, key, value, dv);
                }
                // A PUT advances the local clock entry, which can unblock parked slices.
                core.unpark(&mut outputs);
            }
            ClientRequest::RoTx { keys, rdv } => {
                // Line 32: the snapshot visible to the transaction is the entry-wise
                // maximum of the coordinator's version vector and the client's read
                // dependencies.
                let snapshot = core.vv.snapshot_with(&rdv);
                core.start_ro_tx(client, keys, snapshot, &mut outputs);
            }
        }
        outputs
    }

    fn on_gc_vector(
        &mut self,
        core: &mut EngineCore<C>,
        from: ServerId,
        vector: pocc_types::DependencyVector,
    ) {
        core.gc_contributions.insert(from.partition, vector);
    }

    fn on_tick(
        &mut self,
        core: &mut EngineCore<C>,
        now: Timestamp,
        outputs: &mut Vec<ServerOutput>,
    ) {
        // Garbage collection exchange (§IV-B), also triggered early when a store shard
        // exceeds the configured pressure bounds (`Config::gc_pressure`).
        if now.saturating_since(core.last_gc) >= core.config.gc_interval
            || core.gc_pressure_due(now)
        {
            core.last_gc = now;
            core.gc_exchange_round(outputs);
        }
        // Partition detection (§III-B).
        core.enforce_partition_timeouts(now, outputs);
    }
}

/// A POCC server `p^m_n`: one replica (data center `m`) of one partition (`n`).
///
/// The server is a sans-IO state machine: feed it client requests, server messages and
/// periodic ticks; it returns the replies and messages to deliver. See the crate-level
/// documentation for an end-to-end example.
pub struct PoccServer<C> {
    engine: ProtocolEngine<C, PoccPolicy>,
}

impl<C: Clock> PoccServer<C> {
    /// Creates a POCC server for `id` with the given deployment configuration and clock.
    pub fn new(id: ServerId, config: Config, clock: C) -> Self {
        PoccServer {
            engine: ProtocolEngine::new(id, config, clock, PoccPolicy),
        }
    }

    /// The replica (data center) this server belongs to.
    pub fn replica(&self) -> ReplicaId {
        self.engine.core().replica()
    }

    /// The partition this server is responsible for.
    pub fn partition(&self) -> PartitionId {
        self.engine.core().partition()
    }

    /// The server's current version vector.
    pub fn version_vector(&self) -> &VersionVector {
        &self.engine.core().vv
    }

    /// Read access to the underlying store (used by tests and the convergence checker).
    pub fn store(&self) -> &ShardedStore {
        &self.engine.core().store
    }

    /// Enables or disables the PUT-side dependency wait (Algorithm 2 line 6) at runtime.
    ///
    /// HA-POCC (`pocc-ha`) turns the wait off while a session operates in pessimistic mode
    /// during a network partition, so writes never block on dependencies that may be stuck
    /// behind the partition.
    pub fn set_put_waits_for_dependencies(&mut self, yes: bool) {
        self.engine.core_mut().config.put_waits_for_dependencies = yes;
    }

    /// An observability snapshot of the server's state.
    pub fn status(&self) -> ServerStatus {
        let core = self.engine.core();
        ServerStatus {
            version_vector: core.vv.clone(),
            pending: core.pending_ops(),
            active_transactions: core.active_transactions(),
            store: core.store.stats(),
        }
    }
}

pocc_engine::delegate_protocol_server!(PoccServer);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use pocc_clock::ManualClock;
    use pocc_proto::{
        expect_reply, ClientReply, ProtocolClient, ProtocolServer, ServerIntrospect, ServerMessage,
        TxId,
    };
    use pocc_storage::partition_for_key;
    use pocc_types::{DependencyVector, Key, Value, Version};
    use std::time::Duration;

    const MS: u64 = 1_000;

    fn config(replicas: usize, partitions: usize) -> Config {
        Config::builder()
            .num_replicas(replicas)
            .num_partitions(partitions)
            .partition_detection_timeout(Duration::from_millis(500))
            .build()
            .unwrap()
    }

    fn server(
        replica: u16,
        partition: u32,
        cfg: &Config,
        clock: &ManualClock,
    ) -> PoccServer<ManualClock> {
        PoccServer::new(
            ServerId::new(replica, partition),
            cfg.clone(),
            clock.clone(),
        )
    }

    /// A key owned by `partition` in a deployment of `num_partitions`.
    fn key_in(partition: usize, num_partitions: usize) -> Key {
        (0u64..)
            .map(Key)
            .find(|k| partition_for_key(*k, num_partitions).index() == partition)
            .unwrap()
    }

    fn extract_reply(outputs: &[ServerOutput], client: ClientId) -> Option<ClientReply> {
        outputs.iter().find_map(|o| match o {
            ServerOutput::Reply { client: c, reply } if *c == client => Some(reply.clone()),
            _ => None,
        })
    }

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    #[test]
    fn put_then_get_round_trip_with_replication_output() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(1);
        let key = key_in(0, 1);

        let outputs = s.handle_client_request(
            c,
            ClientRequest::Put {
                key,
                value: Value::from("v1"),
                dv: dv(&[0, 0, 0]),
            },
        );
        // One replication message per sibling replica plus the client reply.
        assert_eq!(outputs.len(), 3);
        let replicas: Vec<_> = outputs
            .iter()
            .filter(|o| matches!(o, ServerOutput::Send { .. }))
            .collect();
        assert_eq!(replicas.len(), 2);
        let ut = expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::Put { update_time }) => update_time,
        );
        assert_eq!(ut, Timestamp(10 * MS));
        assert_eq!(s.version_vector().get(ReplicaId(0)), ut);

        let outputs = s.handle_client_request(
            c,
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"v1");
                assert_eq!(resp.update_time, ut);
                assert_eq!(resp.source_replica, ReplicaId(0));
            }
        );
        let m = s.metrics();
        assert_eq!(m.puts_served, 1);
        assert_eq!(m.gets_served, 1);
        assert_eq!(m.replicate_sent, 2);
        assert_eq!(m.blocked_operations, 0);
    }

    #[test]
    fn get_of_missing_key_returns_empty_response() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key: key_in(0, 1),
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert!(resp.value.is_none());
                assert_eq!(resp.update_time, Timestamp::ZERO);
            }
        );
    }

    #[test]
    fn get_blocks_until_the_missing_dependency_arrives() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(7);
        let key = key_in(0, 1);

        // The client depends on an item from replica 1 with timestamp 20ms that this
        // server has not received yet.
        let outputs = s.handle_client_request(
            c,
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 20 * MS, 0]),
            },
        );
        assert!(outputs.is_empty(), "the GET must be parked");
        assert_eq!(s.metrics().blocked_operations, 1);
        assert_eq!(s.metrics().currently_blocked, 1);
        assert_eq!(s.status().pending.len(), 1);

        // A heartbeat from replica 1 with a lower clock does not unblock it.
        clock.set(Timestamp(15 * MS));
        let outputs = s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(15 * MS),
            },
        );
        assert!(outputs.is_empty());

        // The missing update arrives: the GET is served and returns the fresh value.
        clock.set(Timestamp(21 * MS));
        let version = Version::new(
            key,
            Value::from("fresh"),
            ReplicaId(1),
            Timestamp(20 * MS),
            dv(&[0, 0, 0]),
        );
        let outputs = s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version },
        );
        expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"fresh");
            }
        );
        let m = s.metrics();
        assert_eq!(m.gets_served, 1);
        assert_eq!(m.currently_blocked, 0);
        assert!(m.total_block_time >= Duration::from_millis(10));
    }

    #[test]
    fn heartbeat_unblocks_get_without_delivering_data() {
        // The dependency is on a key of *another* partition: a heartbeat proving that
        // everything up to the dependency timestamp has been sent is enough to unblock.
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(7);
        let key = key_in(0, 2);

        let outputs = s.handle_client_request(
            c,
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 20 * MS, 0]),
            },
        );
        assert!(outputs.is_empty());

        let outputs = s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(25 * MS),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, c),
            Some(ClientReply::Get(_))
        ));
    }

    #[test]
    fn put_blocks_on_missing_dependencies_when_configured() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(2);
        let key = key_in(0, 1);

        let outputs = s.handle_client_request(
            c,
            ClientRequest::Put {
                key,
                value: Value::from("w"),
                dv: dv(&[0, 0, 30 * MS]),
            },
        );
        assert!(outputs.is_empty(), "the PUT must be parked");

        // Once replica 2's heartbeat covers the dependency the PUT is applied and
        // replicated.
        let outputs = s.handle_server_message(
            ServerId::new(2u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(31 * MS),
            },
        );
        let ut = expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::Put { update_time }) => update_time,
        );
        // The new version's timestamp must exceed all its dependencies (Proposition 2).
        assert!(ut > Timestamp(30 * MS));
        assert_eq!(
            outputs
                .iter()
                .filter(|o| matches!(o, ServerOutput::Send { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn put_does_not_block_when_dependency_wait_is_disabled() {
        let cfg = Config::builder()
            .num_replicas(3)
            .num_partitions(1)
            .put_waits_for_dependencies(false)
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::Put {
                key: key_in(0, 1),
                value: Value::from("w"),
                dv: dv(&[0, 0, 30 * MS]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::Put { .. })
        ));
        assert_eq!(s.metrics().blocked_operations, 0);
    }

    #[test]
    fn put_timestamp_exceeds_dependencies_even_with_a_lagging_clock() {
        let cfg = config(3, 1);
        // The local clock lags behind the dependency timestamps.
        let clock = ManualClock::new(Timestamp(5 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        // Dependencies are local-only so the PUT does not park.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key: key_in(0, 1),
                value: Value::from("w"),
                dv: dv(&[8 * MS, 0, 0]),
            },
        );
        let ut = expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Put { update_time }) => update_time,
        );
        assert!(ut > Timestamp(8 * MS));
        assert!(s.metrics().clock_wait_time > Duration::ZERO);
    }

    #[test]
    fn replication_applies_remote_updates_and_advances_the_vector() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        let version = Version::new(
            key,
            Value::from("remote"),
            ReplicaId(2),
            Timestamp(9 * MS),
            dv(&[0, 0, 0]),
        );
        let outputs = s.handle_server_message(
            ServerId::new(2u16, 0u32),
            ServerMessage::Replicate { version },
        );
        assert!(outputs.is_empty());
        assert_eq!(s.version_vector().get(ReplicaId(2)), Timestamp(9 * MS));
        assert_eq!(s.store().latest(key).unwrap().value.as_slice(), b"remote");
        assert_eq!(s.metrics().replicate_received, 1);
    }

    #[test]
    fn optimistic_get_returns_unstable_remote_version() {
        // The defining behaviour of OCC: a remote version whose dependencies are missing
        // locally is still returned to a client with no matching dependency.
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        // The replicated version depends on something from replica 2 this server lacks.
        let version = Version::new(
            key,
            Value::from("unstable"),
            ReplicaId(1),
            Timestamp(9 * MS),
            dv(&[0, 0, 50 * MS]),
        );
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version },
        );
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"unstable");
                // The client inherits the unresolved dependency through the metadata.
                assert_eq!(resp.deps, dv(&[0, 0, 50 * MS]));
            }
        );
    }

    #[test]
    fn tick_emits_heartbeats_when_idle() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.tick();
        let heartbeats: Vec<_> = outputs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::Heartbeat { .. },
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(heartbeats.len(), 2);
        assert_eq!(s.version_vector().get(ReplicaId(0)), Timestamp(10 * MS));

        // Within the same heartbeat interval no further heartbeat is sent.
        clock.set(Timestamp(10 * MS + 500));
        let outputs = s.tick();
        assert!(outputs.iter().all(|o| !matches!(
            o,
            ServerOutput::Send {
                message: ServerMessage::Heartbeat { .. },
                ..
            }
        )));
    }

    #[test]
    fn single_partition_transaction_completes_inline() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("t"),
                dv: dv(&[0, 0, 0]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].key, key);
                assert_eq!(items[0].response.value.as_ref().unwrap().as_slice(), b"t");
            }
        );
        assert_eq!(s.metrics().rotx_served, 1);
        assert_eq!(s.metrics().slices_served, 1);
    }

    #[test]
    fn empty_transaction_returns_immediately() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![],
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) if items.is_empty()
        ));
    }

    #[test]
    fn multi_partition_transaction_uses_slice_requests() {
        let cfg = config(3, 4);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut coordinator = server(0, 0, &cfg, &clock);
        let mut participant = server(0, 1, &cfg, &clock);

        let local_key = key_in(0, 4);
        let remote_key = key_in(1, 4);

        // Seed both partitions.
        coordinator.handle_client_request(
            ClientId(9),
            ClientRequest::Put {
                key: local_key,
                value: Value::from("local"),
                dv: dv(&[0, 0, 0]),
            },
        );
        participant.handle_client_request(
            ClientId(9),
            ClientRequest::Put {
                key: remote_key,
                value: Value::from("remote"),
                dv: dv(&[0, 0, 0]),
            },
        );

        // The client asks the coordinator for both keys.
        let client = ClientId(1);
        let outputs = coordinator.handle_client_request(
            client,
            ClientRequest::RoTx {
                keys: vec![local_key, remote_key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        // No reply yet: the remote slice is outstanding.
        assert!(extract_reply(&outputs, client).is_none());
        let (to, slice_req) = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    to,
                    message: m @ ServerMessage::SliceRequest { .. },
                } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("a slice request must be sent to the peer partition");
        assert_eq!(to, ServerId::new(0u16, 1u32));

        // The participant serves the slice...
        let outputs = participant.handle_server_message(coordinator.server_id(), slice_req);
        let (back_to, slice_resp) = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    to,
                    message: m @ ServerMessage::SliceResponse { .. },
                } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("a slice response must be produced");
        assert_eq!(back_to, coordinator.server_id());

        // ... and the coordinator assembles the final reply.
        let outputs = coordinator.handle_server_message(participant.server_id(), slice_resp);
        expect_reply!(
            extract_reply(&outputs, client),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 2);
                let mut values: Vec<_> = items
                    .iter()
                    .map(|i| i.response.value.as_ref().unwrap().as_slice().to_vec())
                    .collect();
                values.sort();
                assert_eq!(values, vec![b"local".to_vec(), b"remote".to_vec()]);
            }
        );
        assert_eq!(coordinator.metrics().rotx_served, 1);
    }

    #[test]
    fn slice_request_blocks_until_snapshot_is_installed() {
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut participant = server(0, 1, &cfg, &clock);
        let coordinator_id = ServerId::new(0u16, 0u32);
        let key = key_in(1, 2);

        // Snapshot requires replica 1 up to 20 ms; the participant has seen nothing.
        let outputs = participant.handle_server_message(
            coordinator_id,
            ServerMessage::SliceRequest {
                tx: TxId(1),
                client: ClientId(5),
                keys: vec![key],
                snapshot: dv(&[0, 20 * MS, 0]),
            },
        );
        assert!(outputs.is_empty());
        assert_eq!(participant.metrics().blocked_operations, 1);

        // A heartbeat from replica 1 covering the snapshot unblocks the slice. The local
        // entry of the snapshot is zero so the local clock needs no advance.
        let outputs = participant.handle_server_message(
            ServerId::new(1u16, 1u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(25 * MS),
            },
        );
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Send {
                to,
                message: ServerMessage::SliceResponse { .. },
            } if *to == coordinator_id
        )));
    }

    #[test]
    fn transaction_snapshot_excludes_versions_beyond_the_snapshot() {
        // A fresher version arriving after the snapshot was fixed must not be returned by
        // the slice read, even though a plain GET would return it.
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("old"),
                dv: dv(&[0, 0, 0]),
            },
        );
        // Fix the snapshot now (VV[0] = 10ms).
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items[0].response.value.as_ref().unwrap().as_slice(), b"old");
            }
        );

        // Now a newer write lands and a *new* transaction sees it.
        clock.set(Timestamp(20 * MS));
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("new"),
                dv: dv(&[10 * MS, 0, 0]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items[0].response.value.as_ref().unwrap().as_slice(), b"new");
            }
        );
    }

    #[test]
    fn blocked_get_times_out_into_a_session_abort() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(3);
        let outputs = s.handle_client_request(
            c,
            ClientRequest::Get {
                key: key_in(0, 1),
                rdv: dv(&[0, 999 * MS, 0]),
            },
        );
        assert!(outputs.is_empty());

        // Before the timeout nothing happens.
        clock.set(Timestamp(100 * MS));
        let outputs = s.tick();
        assert!(extract_reply(&outputs, c).is_none());

        // After the partition-detection timeout the session is closed.
        clock.set(Timestamp(600 * MS));
        let outputs = s.tick();
        expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::SessionAborted { reason }) => {
                assert!(reason.contains("missing read dependency"));
            }
        );
        assert_eq!(s.metrics().sessions_aborted, 1);
        assert_eq!(s.metrics().currently_blocked, 0);
    }

    #[test]
    fn coordinated_transaction_times_out_into_a_session_abort() {
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(3);
        // The transaction involves the peer partition, whose response never arrives.
        let outputs = s.handle_client_request(
            c,
            ClientRequest::RoTx {
                keys: vec![key_in(1, 2)],
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(extract_reply(&outputs, c).is_none());
        clock.set(Timestamp(600 * MS));
        let outputs = s.tick();
        assert!(matches!(
            extract_reply(&outputs, c),
            Some(ClientReply::SessionAborted { .. })
        ));
        // A late slice response is ignored without panicking.
        let outputs = s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::SliceResponse {
                tx: TxId(0),
                items: vec![],
            },
        );
        assert!(outputs.is_empty());
    }

    #[test]
    fn gc_round_exchanges_vectors_and_collects_old_versions() {
        let cfg = Config::builder()
            .num_replicas(1)
            .num_partitions(2)
            .gc_interval(Duration::from_millis(10))
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 2);
        for i in 1..=5u64 {
            clock.set(Timestamp((10 + i) * MS));
            s.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(i),
                    dv: dv(&[(10 + i - 1) * MS]),
                },
            );
        }
        assert_eq!(s.store().stats().versions, 5);

        // First tick initiates the GC exchange and sends the contribution to the peer.
        clock.set(Timestamp(30 * MS));
        let outputs = s.tick();
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Send {
                message: ServerMessage::GcVector { .. },
                ..
            }
        )));

        // The peer's contribution arrives, covering everything.
        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::GcVector {
                vector: dv(&[100 * MS]),
            },
        );
        clock.set(Timestamp(50 * MS));
        s.tick();
        // Only the newest version survives (it is the first one covered by the GC vector).
        assert_eq!(s.store().stats().versions, 1);
        assert!(s.metrics().gc_versions_removed >= 4);
    }

    #[test]
    fn storage_pressure_triggers_gc_before_the_interval() {
        let build = |pressure: bool| {
            Config::builder()
                .num_replicas(1)
                .num_partitions(1)
                .gc_interval(Duration::from_secs(10))
                .gc_pressure(pressure)
                .gc_pressure_max_chain_len(4)
                .gc_pressure_backoff(Duration::from_millis(1))
                .build()
                .unwrap()
        };
        let fill = |s: &mut PoccServer<ManualClock>, clock: &ManualClock, key: Key| {
            for i in 1..=6u64 {
                clock.set(Timestamp((10 + i) * MS));
                s.handle_client_request(
                    ClientId(1),
                    ClientRequest::Put {
                        key,
                        value: Value::from(i),
                        dv: dv(&[(10 + i - 1) * MS]),
                    },
                );
            }
        };
        let key = key_in(0, 1);

        // Interval-only GC: the chain keeps growing until the (distant) interval boundary.
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut baseline = server(0, 0, &build(false), &clock);
        fill(&mut baseline, &clock, key);
        clock.set(Timestamp(20 * MS));
        baseline.tick();
        assert_eq!(baseline.store().stats().versions, 6);

        // Pressure-adaptive GC: the 6-version chain exceeds the bound of 4, so the same
        // early tick runs a full exchange-and-collect round (the single-partition
        // deployment completes it locally) and trims the chain to the newest version.
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut adaptive = server(0, 0, &build(true), &clock);
        fill(&mut adaptive, &clock, key);
        clock.set(Timestamp(20 * MS));
        adaptive.tick();
        assert_eq!(adaptive.store().stats().versions, 1);
        assert_eq!(adaptive.metrics().gc_versions_removed, 5);

        // The backoff throttles the next pressure-triggered round: re-exceed the bound,
        // and a tick half a backoff later leaves the chain alone...
        for i in 1..=6u64 {
            clock.set(Timestamp(20 * MS + i));
            adaptive.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(i),
                    dv: dv(&[20 * MS + i - 1]),
                },
            );
        }
        clock.set(Timestamp(20 * MS + 500));
        adaptive.tick();
        assert_eq!(adaptive.store().stats().versions, 7);

        // ...while a tick past the backoff collects again.
        clock.set(Timestamp(22 * MS));
        adaptive.tick();
        assert_eq!(adaptive.store().stats().versions, 1);
    }

    #[test]
    fn batched_replication_defers_to_tick_and_preserves_order() {
        let cfg = Config::builder()
            .num_replicas(2)
            .num_partitions(1)
            .replication_batching(true)
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut sender = server(0, 0, &cfg, &clock);
        let mut receiver = PoccServer::new(ServerId::new(1u16, 0u32), cfg, clock.clone());
        let key = key_in(0, 1);

        // Two PUTs: replies come back immediately, replication is buffered.
        for (t, v) in [(10u64, "a"), (11, "b")] {
            clock.set(Timestamp(t * MS));
            let outputs = sender.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(v),
                    dv: dv(&[0, 0]),
                },
            );
            assert!(matches!(
                extract_reply(&outputs, ClientId(1)),
                Some(ClientReply::Put { .. })
            ));
            assert!(
                !outputs
                    .iter()
                    .any(|o| matches!(o, ServerOutput::Send { .. })),
                "replication must be buffered, not sent inline"
            );
        }
        // Per-message metrics are still counted at stage time.
        assert_eq!(sender.metrics().replicate_sent, 2);
        assert_eq!(sender.metrics().batches_sent, 0);

        // The next tick flushes one batch (before any heartbeat) carrying both versions
        // in timestamp order.
        clock.set(Timestamp(12 * MS));
        let outputs = sender.tick();
        let (to, batch) = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    to,
                    message: m @ ServerMessage::Batch { .. },
                } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("a batch must flush on tick");
        assert_eq!(to, receiver.server_id());
        assert_eq!(sender.metrics().batches_sent, 1);
        let batch_pos = outputs
            .iter()
            .position(|o| {
                matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::Batch { .. },
                        ..
                    }
                )
            })
            .unwrap();
        let hb_pos = outputs.iter().position(|o| {
            matches!(
                o,
                ServerOutput::Send {
                    message: ServerMessage::Heartbeat { .. },
                    ..
                }
            )
        });
        if let Some(hb_pos) = hb_pos {
            assert!(batch_pos < hb_pos, "the batch must precede the heartbeat");
        }

        // Applying the batch installs both versions and advances the version vector as if
        // the messages had arrived individually.
        receiver.handle_server_message(sender.server_id(), batch);
        assert_eq!(receiver.metrics().replicate_received, 2);
        assert_eq!(receiver.store().latest(key).unwrap().value.as_slice(), b"b");
        assert_eq!(
            receiver.version_vector().get(ReplicaId(0)),
            Timestamp(11 * MS)
        );
        assert_eq!(sender.digest(), receiver.digest());
    }

    #[test]
    fn end_to_end_client_server_session_maintains_causality_metadata() {
        // Drive a Client (Algorithm 1) against a server and check Propositions 1 and 2.
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let mut client = Client::new(ClientId(1), s.server_id(), 3);
        let key = key_in(0, 1);

        // PUT X.
        let outputs =
            s.handle_client_request(client.client_id(), client.put(key, Value::from("x")));
        let reply = extract_reply(&outputs, client.client_id()).unwrap();
        client.process_reply(&reply).unwrap();
        let x_ut = match reply {
            ClientReply::Put { update_time } => update_time,
            _ => unreachable!(),
        };

        // GET X back, establishing a read dependency.
        clock.set(Timestamp(20 * MS));
        let outputs = s.handle_client_request(client.client_id(), client.get(key));
        let reply = extract_reply(&outputs, client.client_id()).unwrap();
        client.process_reply(&reply).unwrap();

        // PUT Y: its dependency vector must cover X (Proposition 1) and its timestamp must
        // exceed X's (Proposition 2).
        let outputs =
            s.handle_client_request(client.client_id(), client.put(key, Value::from("y")));
        let reply = extract_reply(&outputs, client.client_id()).unwrap();
        let y_ut = match &reply {
            ClientReply::Put { update_time } => *update_time,
            _ => unreachable!(),
        };
        client.process_reply(&reply).unwrap();
        assert!(y_ut > x_ut);
        let stored_y = s.store().latest(key).unwrap();
        assert!(stored_y.deps.get(ReplicaId(0)) >= x_ut);
    }
}
