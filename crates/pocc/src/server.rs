//! The POCC server state machine (Algorithm 2 of the paper).

use crate::pending::{Parked, PendingOp};
use pocc_clock::Clock;
use pocc_proto::{
    ClientReply, ClientRequest, GetResponse, MessageBatcher, MetricsSnapshot, ProtocolServer,
    ServerMessage, ServerOutput, TxId, TxItem,
};
use pocc_storage::{partition_for_key, ShardedStore};
use pocc_types::{
    ClientId, Config, DependencyVector, Key, PartitionId, ReplicaId, ServerId, Timestamp, Version,
    VersionVector,
};
use std::collections::HashMap;

/// State of a read-only transaction this server coordinates.
#[derive(Clone, Debug)]
struct TxState {
    client: ClientId,
    /// Number of slice responses still expected (including the local slice, if parked).
    outstanding_slices: usize,
    /// Items collected so far.
    items: Vec<TxItem>,
    /// The transaction snapshot vector `TV` (contributes to the GC lower bound).
    snapshot: DependencyVector,
    /// When the transaction started (server clock), for the partition detector.
    started: Timestamp,
}

/// An observability snapshot of a POCC server's internal state.
#[derive(Clone, Debug)]
pub struct ServerStatus {
    /// The server's version vector.
    pub version_vector: VersionVector,
    /// Currently parked operations.
    pub pending: Vec<PendingOp>,
    /// Read-only transactions currently being coordinated.
    pub active_transactions: usize,
    /// Storage statistics.
    pub store: pocc_storage::StoreStats,
}

/// A POCC server `p^m_n`: one replica (data center `m`) of one partition (`n`).
///
/// The server is a sans-IO state machine: feed it client requests, server messages and
/// periodic ticks; it returns the replies and messages to deliver. See the crate-level
/// documentation for an end-to-end example.
pub struct PoccServer<C> {
    id: ServerId,
    config: Config,
    clock: C,
    store: ShardedStore,
    /// The version vector `VV^m_n`.
    vv: VersionVector,
    /// Parked operations, in arrival order.
    parked: Vec<Parked>,
    /// Read-only transactions this server coordinates.
    transactions: HashMap<TxId, TxState>,
    next_tx: TxId,
    /// Latest garbage-collection contribution received from each local peer partition.
    gc_contributions: HashMap<PartitionId, DependencyVector>,
    /// When the last garbage-collection exchange was initiated.
    last_gc_exchange: Timestamp,
    /// Coalesces replication/GC traffic per destination when batching is enabled
    /// (`Config::replication_batching`); flushed at the start of every tick.
    batcher: MessageBatcher,
    metrics: MetricsSnapshot,
    /// Extra CPU work units (chain elements traversed beyond the head) since the last
    /// [`ProtocolServer::take_extra_work`] call.
    extra_work: u64,
}

impl<C: Clock> PoccServer<C> {
    /// Creates a POCC server for `id` with the given deployment configuration and clock.
    pub fn new(id: ServerId, config: Config, clock: C) -> Self {
        let m = config.num_replicas;
        PoccServer {
            store: ShardedStore::with_shards(
                id.partition,
                config.num_partitions,
                config.storage_shards,
            ),
            vv: VersionVector::zero(m),
            parked: Vec::new(),
            transactions: HashMap::new(),
            next_tx: TxId(0),
            gc_contributions: HashMap::new(),
            last_gc_exchange: Timestamp::ZERO,
            batcher: MessageBatcher::new(config.replication_batching),
            metrics: MetricsSnapshot::default(),
            extra_work: 0,
            id,
            config,
            clock,
        }
    }

    /// The replica (data center) this server belongs to.
    pub fn replica(&self) -> ReplicaId {
        self.id.replica
    }

    /// The partition this server is responsible for.
    pub fn partition(&self) -> PartitionId {
        self.id.partition
    }

    /// The server's current version vector.
    pub fn version_vector(&self) -> &VersionVector {
        &self.vv
    }

    /// Read access to the underlying store (used by tests and the convergence checker).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Enables or disables the PUT-side dependency wait (Algorithm 2 line 6) at runtime.
    ///
    /// HA-POCC (`pocc-ha`) turns the wait off while a session operates in pessimistic mode
    /// during a network partition, so writes never block on dependencies that may be stuck
    /// behind the partition.
    pub fn set_put_waits_for_dependencies(&mut self, yes: bool) {
        self.config.put_waits_for_dependencies = yes;
    }

    /// An observability snapshot of the server's state.
    pub fn status(&self) -> ServerStatus {
        ServerStatus {
            version_vector: self.vv.clone(),
            pending: self.parked.iter().map(Parked::view).collect(),
            active_transactions: self.transactions.len(),
            store: self.store.stats(),
        }
    }

    // -----------------------------------------------------------------------------------
    // Helpers
    // -----------------------------------------------------------------------------------

    /// Builds a `Send` output while accounting for the traffic in the metrics.
    fn send(&mut self, to: ServerId, message: ServerMessage) -> ServerOutput {
        self.metrics.bytes_sent += message.wire_size() as u64;
        match &message {
            ServerMessage::Replicate { .. } => self.metrics.replicate_sent += 1,
            ServerMessage::Heartbeat { .. } => self.metrics.heartbeats_sent += 1,
            ServerMessage::StabilizationVector { .. } => self.metrics.stabilization_messages += 1,
            ServerMessage::GcVector { .. } => self.metrics.gc_messages += 1,
            _ => {}
        }
        ServerOutput::send(to, message)
    }

    /// Sends a message through the replication batcher: delivered immediately when
    /// batching is off (or the message is latency-sensitive), deferred to the next tick's
    /// flush otherwise. Per-message metrics are accounted either way.
    fn send_via_batcher(
        &mut self,
        to: ServerId,
        message: ServerMessage,
        outputs: &mut Vec<ServerOutput>,
    ) {
        let out = self.send(to, message);
        if let Some(out) = self.batcher.stage_one(out) {
            outputs.push(out);
        }
    }

    /// The sibling replicas of this server: same partition, every other data center.
    fn siblings(&self) -> Vec<ServerId> {
        self.config
            .replicas()
            .filter(|r| *r != self.id.replica)
            .map(|r| self.id.sibling(r))
            .collect()
    }

    /// The local peers of this server: same data center, every other partition.
    fn local_peers(&self) -> Vec<ServerId> {
        self.config
            .partitions()
            .filter(|p| *p != self.id.partition)
            .map(|p| self.id.local_peer(p))
            .collect()
    }

    /// Whether the server has installed every dependency in `deps` originated at a remote
    /// data center (the wait condition of Algorithm 2 lines 2 and 6).
    fn covers_remote_deps(&self, deps: &DependencyVector) -> bool {
        self.vv
            .covers_dependencies_except_local(deps, self.id.replica)
    }

    /// Builds the reply payload for a read of `key` at the head of its version chain.
    fn freshest_response(&self, key: Key) -> GetResponse {
        match self.store.latest(key) {
            Some(v) => GetResponse {
                value: Some(v.value.clone()),
                update_time: v.update_time,
                deps: v.deps.clone(),
                source_replica: v.source_replica,
            },
            None => GetResponse {
                value: None,
                update_time: Timestamp::ZERO,
                deps: DependencyVector::zero(self.config.num_replicas),
                source_replica: self.id.replica,
            },
        }
    }

    // -----------------------------------------------------------------------------------
    // GET
    // -----------------------------------------------------------------------------------

    fn handle_get(
        &mut self,
        client: ClientId,
        key: Key,
        rdv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if self.covers_remote_deps(&rdv) {
            outputs.push(self.serve_get(client, key));
        } else {
            self.metrics.blocked_operations += 1;
            self.parked.push(Parked::Get {
                client,
                key,
                rdv,
                since: self.clock.now(),
            });
        }
    }

    /// Serves a GET whose wait condition holds: return the freshest version
    /// (Algorithm 2 lines 3–4).
    fn serve_get(&mut self, client: ClientId, key: Key) -> ServerOutput {
        self.metrics.gets_served += 1;
        let resp = self.freshest_response(key);
        ServerOutput::reply(client, ClientReply::Get(resp))
    }

    // -----------------------------------------------------------------------------------
    // PUT
    // -----------------------------------------------------------------------------------

    fn handle_put(
        &mut self,
        client: ClientId,
        key: Key,
        value: pocc_types::Value,
        dv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if !self.config.put_waits_for_dependencies || self.covers_remote_deps(&dv) {
            self.serve_put(client, key, value, dv, outputs);
        } else {
            self.metrics.blocked_operations += 1;
            self.parked.push(Parked::Put {
                client,
                key,
                value,
                dv,
                since: self.clock.now(),
            });
        }
    }

    /// Serves a PUT whose (optional) dependency wait condition holds
    /// (Algorithm 2 lines 7–15).
    fn serve_put(
        &mut self,
        client: ClientId,
        key: Key,
        value: pocc_types::Value,
        dv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        // Line 7: wait until the local clock exceeds every dependency timestamp, so the new
        // version's update time is strictly larger than anything it depends on. The wait is
        // bounded by the clock skew (microseconds); we account for it and jump the
        // timestamp forward instead of parking the request.
        let now = self.clock.now();
        let max_dep = dv.max_entry();
        let update_time = if now > max_dep {
            now
        } else {
            self.metrics.clock_wait_time +=
                max_dep.saturating_since(now) + std::time::Duration::from_micros(1);
            max_dep.tick()
        };

        // Line 8: advance the local entry of the version vector.
        self.vv.advance(self.id.replica, update_time);

        // Lines 9–11: create the version and insert it into the chain.
        let version = Version::new(key, value, self.id.replica, update_time, dv);
        self.store
            .insert(version.clone())
            .expect("PUT routed to the wrong partition");

        // Lines 12–14: asynchronously replicate to the sibling replicas, in timestamp order
        // (guaranteed because PUTs are processed in clock order and channels are FIFO;
        // the batcher preserves buffer order, so batching keeps the guarantee).
        for sibling in self.siblings() {
            let msg = ServerMessage::Replicate {
                version: version.clone(),
            };
            self.send_via_batcher(sibling, msg, outputs);
        }

        // Line 15: reply with the new update time.
        self.metrics.puts_served += 1;
        outputs.push(ServerOutput::reply(
            client,
            ClientReply::Put { update_time },
        ));
    }

    // -----------------------------------------------------------------------------------
    // RO-TX (coordinator side)
    // -----------------------------------------------------------------------------------

    fn handle_ro_tx(
        &mut self,
        client: ClientId,
        keys: Vec<Key>,
        rdv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if keys.is_empty() {
            self.metrics.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                client,
                ClientReply::RoTx { items: Vec::new() },
            ));
            return;
        }

        // Algorithm 2 line 32: the snapshot visible to the transaction is the entry-wise
        // maximum of the coordinator's version vector and the client's read dependencies.
        let snapshot = self.vv.snapshot_with(&rdv);

        // Group the requested keys by owning partition (line 30).
        let mut by_partition: HashMap<PartitionId, Vec<Key>> = HashMap::new();
        for key in keys {
            by_partition
                .entry(partition_for_key(key, self.config.num_partitions))
                .or_default()
                .push(key);
        }

        let tx = self.next_tx;
        self.next_tx = self.next_tx.next();
        self.transactions.insert(
            tx,
            TxState {
                client,
                outstanding_slices: by_partition.len(),
                items: Vec::new(),
                snapshot: snapshot.clone(),
                started: self.clock.now(),
            },
        );

        // Lines 33–37: ask every involved partition for its slice of the snapshot. The
        // local partition is served in-process (possibly parking until the snapshot is
        // installed locally).
        // Deterministic fan-out order (HashMap iteration order is randomised per process).
        let mut groups: Vec<_> = by_partition.into_iter().collect();
        groups.sort_by_key(|(partition, _)| *partition);
        let mut local_keys = None;
        for (partition, keys) in groups {
            if partition == self.id.partition {
                local_keys = Some(keys);
            } else {
                let msg = ServerMessage::SliceRequest {
                    tx,
                    client,
                    keys,
                    snapshot: snapshot.clone(),
                };
                let to = self.id.local_peer(partition);
                outputs.push(self.send(to, msg));
            }
        }
        if let Some(keys) = local_keys {
            self.serve_or_park_slice(None, tx, client, keys, snapshot, outputs);
        }
    }

    /// Folds a completed slice into the transaction state and replies to the client when
    /// every slice has arrived.
    fn complete_slice(&mut self, tx: TxId, items: Vec<TxItem>, outputs: &mut Vec<ServerOutput>) {
        let finished = {
            let Some(state) = self.transactions.get_mut(&tx) else {
                // The transaction was aborted by the partition detector; drop the late slice.
                return;
            };
            state.items.extend(items);
            state.outstanding_slices = state.outstanding_slices.saturating_sub(1);
            state.outstanding_slices == 0
        };
        if finished {
            let state = self
                .transactions
                .remove(&tx)
                .expect("transaction present while completing");
            self.metrics.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::RoTx { items: state.items },
            ));
        }
    }

    // -----------------------------------------------------------------------------------
    // Slice reads (participant side)
    // -----------------------------------------------------------------------------------

    /// Serves a transactional slice read if the snapshot is installed locally, parks it
    /// otherwise (Algorithm 2 lines 39–47).
    fn serve_or_park_slice(
        &mut self,
        origin: Option<ServerId>,
        tx: TxId,
        client: ClientId,
        keys: Vec<Key>,
        snapshot: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if self.vv.covers(&snapshot) {
            let items = self.read_slice(&keys, &snapshot);
            self.metrics.slices_served += 1;
            match origin {
                Some(origin) => {
                    let msg = ServerMessage::SliceResponse { tx, items };
                    outputs.push(self.send(origin, msg));
                }
                None => self.complete_slice(tx, items, outputs),
            }
        } else {
            self.metrics.blocked_operations += 1;
            self.parked.push(Parked::Slice {
                origin,
                tx,
                client,
                keys,
                snapshot,
                since: self.clock.now(),
            });
        }
    }

    /// Reads every key of a slice within the snapshot, collecting staleness statistics
    /// (Algorithm 2 lines 41–46).
    fn read_slice(&mut self, keys: &[Key], snapshot: &DependencyVector) -> Vec<TxItem> {
        let mut items = Vec::with_capacity(keys.len());
        for &key in keys {
            let outcome = self.store.latest_in_snapshot(key, snapshot);
            self.extra_work += outcome.stats.traversed.saturating_sub(1) as u64;
            self.metrics.tx_items_returned += 1;
            if outcome.is_old() {
                self.metrics.old_tx_items += 1;
                // In POCC every version older than the returned one is already merged, so
                // "old" and "unmerged" coincide for transactional reads (§V-C).
                self.metrics.unmerged_tx_items += 1;
            }
            let response = match outcome.version {
                Some(v) => GetResponse {
                    value: Some(v.value.clone()),
                    update_time: v.update_time,
                    deps: v.deps.clone(),
                    source_replica: v.source_replica,
                },
                None => GetResponse {
                    value: None,
                    update_time: Timestamp::ZERO,
                    deps: DependencyVector::zero(self.config.num_replicas),
                    source_replica: self.id.replica,
                },
            };
            items.push(TxItem { key, response });
        }
        items
    }

    // -----------------------------------------------------------------------------------
    // Unparking and timeouts
    // -----------------------------------------------------------------------------------

    /// Re-evaluates every parked operation after the version vector advanced, serving the
    /// ones whose wait condition now holds.
    fn unpark(&mut self, outputs: &mut Vec<ServerOutput>) {
        if self.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        let now = self.clock.now();
        for op in parked {
            let ready = match &op {
                Parked::Get { rdv, .. } => self.covers_remote_deps(rdv),
                Parked::Put { dv, .. } => self.covers_remote_deps(dv),
                Parked::Slice { snapshot, .. } => self.vv.covers(snapshot),
            };
            if !ready {
                self.parked.push(op);
                continue;
            }
            self.metrics.total_block_time += now.saturating_since(op.since());
            match op {
                Parked::Get { client, key, .. } => {
                    let out = self.serve_get(client, key);
                    outputs.push(out);
                }
                Parked::Put {
                    client,
                    key,
                    value,
                    dv,
                    ..
                } => self.serve_put(client, key, value, dv, outputs),
                Parked::Slice {
                    origin,
                    tx,
                    client,
                    keys,
                    snapshot,
                    ..
                } => {
                    // Serve directly: the wait condition has just been checked.
                    let items = self.read_slice(&keys, &snapshot);
                    self.metrics.slices_served += 1;
                    match origin {
                        Some(origin) => {
                            let msg = ServerMessage::SliceResponse { tx, items };
                            let out = self.send(origin, msg);
                            outputs.push(out);
                        }
                        None => {
                            let _ = client;
                            self.complete_slice(tx, items, outputs);
                        }
                    }
                }
            }
        }
    }

    /// Aborts parked client-facing operations and coordinated transactions that exceeded
    /// the partition-detection timeout (§III-B phase 1: the server closes the session).
    fn enforce_partition_timeouts(&mut self, outputs: &mut Vec<ServerOutput>) {
        let timeout = self.config.partition_detection_timeout;
        let now = self.clock.now();

        let parked = std::mem::take(&mut self.parked);
        for op in parked {
            let expired = now.saturating_since(op.since()) >= timeout;
            if expired && op.is_client_facing() {
                self.metrics.sessions_aborted += 1;
                outputs.push(ServerOutput::reply(
                    op.client(),
                    ClientReply::SessionAborted {
                        reason: format!("blocked on {} beyond the partition timeout", op.reason()),
                    },
                ));
            } else if expired {
                // A slice read on behalf of a remote coordinator: the coordinator's own
                // timeout aborts the client session; the parked slice is simply dropped.
            } else {
                self.parked.push(op);
            }
        }

        let expired_txs: Vec<TxId> = self
            .transactions
            .iter()
            .filter(|(_, st)| now.saturating_since(st.started) >= timeout)
            .map(|(tx, _)| *tx)
            .collect();
        for tx in expired_txs {
            let state = self.transactions.remove(&tx).expect("tx present");
            self.metrics.sessions_aborted += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::SessionAborted {
                    reason: "read-only transaction blocked beyond the partition timeout".into(),
                },
            ));
        }
    }

    // -----------------------------------------------------------------------------------
    // Garbage collection (§IV-B)
    // -----------------------------------------------------------------------------------

    /// This server's contribution to the garbage-collection vector: the entry-wise minimum
    /// of the snapshot vectors of its active transactions, or its version vector when it
    /// coordinates none.
    ///
    /// The paper exchanges the aggregate *maximum* of the active snapshot vectors; we use
    /// the minimum, which is never less conservative and guarantees that no version
    /// readable by an active transaction is ever collected (see DESIGN.md).
    fn gc_contribution(&self) -> DependencyVector {
        let mut contribution = DependencyVector::from_entries(self.vv.as_slice().to_vec());
        for tx in self.transactions.values() {
            contribution.meet(&tx.snapshot);
        }
        contribution
    }

    /// Runs one garbage-collection exchange round and collects garbage if contributions
    /// from every local peer are known.
    fn gc_round(&mut self, outputs: &mut Vec<ServerOutput>) {
        let contribution = self.gc_contribution();
        for peer in self.local_peers() {
            let msg = ServerMessage::GcVector {
                vector: contribution.clone(),
            };
            self.send_via_batcher(peer, msg, outputs);
        }
        self.gc_contributions
            .insert(self.id.partition, contribution);

        if self.gc_contributions.len() == self.config.num_partitions {
            let mut gv = self
                .gc_contributions
                .values()
                .next()
                .expect("at least the local contribution")
                .clone();
            for v in self.gc_contributions.values() {
                gv.meet(v);
            }
            let removed = self.store.collect_garbage(&gv);
            self.metrics.gc_versions_removed += removed as u64;
        }
    }
}

impl<C: Clock> ProtocolServer for PoccServer<C> {
    fn server_id(&self) -> ServerId {
        self.id
    }

    fn handle_client_request(
        &mut self,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        match request {
            ClientRequest::Get { key, rdv } => self.handle_get(client, key, rdv, &mut outputs),
            ClientRequest::Put { key, value, dv } => {
                self.handle_put(client, key, value, dv, &mut outputs);
                // A PUT advances the local clock entry, which can unblock parked slices.
                self.unpark(&mut outputs);
            }
            ClientRequest::RoTx { keys, rdv } => self.handle_ro_tx(client, keys, rdv, &mut outputs),
        }
        outputs
    }

    fn handle_server_message(
        &mut self,
        from: ServerId,
        message: ServerMessage,
    ) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        match message {
            ServerMessage::Replicate { version } => {
                // Algorithm 2 lines 16–18.
                self.metrics.replicate_received += 1;
                self.vv.advance(from.replica, version.update_time);
                self.store
                    .insert(version)
                    .expect("replicated update routed to the wrong partition");
                self.unpark(&mut outputs);
            }
            ServerMessage::Heartbeat { clock } => {
                // Algorithm 2 lines 27–28.
                self.metrics.heartbeats_received += 1;
                self.vv.advance(from.replica, clock);
                self.unpark(&mut outputs);
            }
            ServerMessage::SliceRequest {
                tx,
                client,
                keys,
                snapshot,
            } => {
                self.serve_or_park_slice(Some(from), tx, client, keys, snapshot, &mut outputs);
            }
            ServerMessage::SliceResponse { tx, items } => {
                self.complete_slice(tx, items, &mut outputs);
            }
            ServerMessage::StabilizationVector { .. } => {
                // Plain POCC does not run the stabilization protocol; HA-POCC (pocc-ha)
                // consumes these. Count it so misconfigurations are visible in metrics.
                self.metrics.stabilization_messages += 1;
            }
            ServerMessage::GcVector { vector } => {
                self.metrics.gc_messages += 1;
                self.gc_contributions.insert(from.partition, vector);
            }
            ServerMessage::Batch { messages } => {
                for inner in messages {
                    outputs.extend(self.handle_server_message(from, inner));
                }
            }
        }
        outputs
    }

    fn tick(&mut self) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        // Ship the traffic coalesced since the last tick first, so heartbeats emitted
        // below cannot overtake buffered replication on the FIFO channels.
        self.batcher.flush_into(&mut self.metrics, &mut outputs);
        let now = self.clock.now();

        // Heartbeats (Algorithm 2 lines 19–26): if no local update advanced VV[m] for the
        // last ∆, broadcast the clock so sibling replicas can advance their vectors.
        let local = self.id.replica;
        if now >= self.vv.get(local) + self.config.heartbeat_interval {
            self.vv.set(local, now);
            for sibling in self.siblings() {
                let msg = ServerMessage::Heartbeat { clock: now };
                outputs.push(self.send(sibling, msg));
            }
            // The local entry advanced: parked slices constrained by it may now proceed.
            self.unpark(&mut outputs);
        }

        // Garbage collection exchange (§IV-B).
        if now.saturating_since(self.last_gc_exchange) >= self.config.gc_interval {
            self.last_gc_exchange = now;
            self.gc_round(&mut outputs);
        }

        // Partition detection (§III-B).
        self.enforce_partition_timeouts(&mut outputs);

        outputs
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.metrics.clone();
        m.currently_blocked = self.parked.len() as u64;
        m
    }

    fn digest(&self) -> Vec<(Key, Timestamp, ReplicaId)> {
        self.store.digest()
    }

    fn store_stats(&self) -> pocc_storage::StoreStats {
        self.store.stats()
    }

    fn shard_stats(&self) -> Vec<pocc_storage::ShardStats> {
        self.store.shard_stats()
    }

    fn take_extra_work(&mut self) -> u64 {
        std::mem::take(&mut self.extra_work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use pocc_clock::ManualClock;
    use pocc_proto::{expect_reply, ProtocolClient};
    use pocc_types::Value;
    use std::time::Duration;

    const MS: u64 = 1_000;

    fn config(replicas: usize, partitions: usize) -> Config {
        Config::builder()
            .num_replicas(replicas)
            .num_partitions(partitions)
            .partition_detection_timeout(Duration::from_millis(500))
            .build()
            .unwrap()
    }

    fn server(
        replica: u16,
        partition: u32,
        cfg: &Config,
        clock: &ManualClock,
    ) -> PoccServer<ManualClock> {
        PoccServer::new(
            ServerId::new(replica, partition),
            cfg.clone(),
            clock.clone(),
        )
    }

    /// A key owned by `partition` in a deployment of `num_partitions`.
    fn key_in(partition: usize, num_partitions: usize) -> Key {
        (0u64..)
            .map(Key)
            .find(|k| partition_for_key(*k, num_partitions).index() == partition)
            .unwrap()
    }

    fn extract_reply(outputs: &[ServerOutput], client: ClientId) -> Option<ClientReply> {
        outputs.iter().find_map(|o| match o {
            ServerOutput::Reply { client: c, reply } if *c == client => Some(reply.clone()),
            _ => None,
        })
    }

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    #[test]
    fn put_then_get_round_trip_with_replication_output() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(1);
        let key = key_in(0, 1);

        let outputs = s.handle_client_request(
            c,
            ClientRequest::Put {
                key,
                value: Value::from("v1"),
                dv: dv(&[0, 0, 0]),
            },
        );
        // One replication message per sibling replica plus the client reply.
        assert_eq!(outputs.len(), 3);
        let replicas: Vec<_> = outputs
            .iter()
            .filter(|o| matches!(o, ServerOutput::Send { .. }))
            .collect();
        assert_eq!(replicas.len(), 2);
        let ut = expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::Put { update_time }) => update_time,
        );
        assert_eq!(ut, Timestamp(10 * MS));
        assert_eq!(s.version_vector().get(ReplicaId(0)), ut);

        let outputs = s.handle_client_request(
            c,
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"v1");
                assert_eq!(resp.update_time, ut);
                assert_eq!(resp.source_replica, ReplicaId(0));
            }
        );
        let m = s.metrics();
        assert_eq!(m.puts_served, 1);
        assert_eq!(m.gets_served, 1);
        assert_eq!(m.replicate_sent, 2);
        assert_eq!(m.blocked_operations, 0);
    }

    #[test]
    fn get_of_missing_key_returns_empty_response() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key: key_in(0, 1),
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert!(resp.value.is_none());
                assert_eq!(resp.update_time, Timestamp::ZERO);
            }
        );
    }

    #[test]
    fn get_blocks_until_the_missing_dependency_arrives() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(7);
        let key = key_in(0, 1);

        // The client depends on an item from replica 1 with timestamp 20ms that this
        // server has not received yet.
        let outputs = s.handle_client_request(
            c,
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 20 * MS, 0]),
            },
        );
        assert!(outputs.is_empty(), "the GET must be parked");
        assert_eq!(s.metrics().blocked_operations, 1);
        assert_eq!(s.metrics().currently_blocked, 1);
        assert_eq!(s.status().pending.len(), 1);

        // A heartbeat from replica 1 with a lower clock does not unblock it.
        clock.set(Timestamp(15 * MS));
        let outputs = s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(15 * MS),
            },
        );
        assert!(outputs.is_empty());

        // The missing update arrives: the GET is served and returns the fresh value.
        clock.set(Timestamp(21 * MS));
        let version = Version::new(
            key,
            Value::from("fresh"),
            ReplicaId(1),
            Timestamp(20 * MS),
            dv(&[0, 0, 0]),
        );
        let outputs = s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version },
        );
        expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"fresh");
            }
        );
        let m = s.metrics();
        assert_eq!(m.gets_served, 1);
        assert_eq!(m.currently_blocked, 0);
        assert!(m.total_block_time >= Duration::from_millis(10));
    }

    #[test]
    fn heartbeat_unblocks_get_without_delivering_data() {
        // The dependency is on a key of *another* partition: a heartbeat proving that
        // everything up to the dependency timestamp has been sent is enough to unblock.
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(7);
        let key = key_in(0, 2);

        let outputs = s.handle_client_request(
            c,
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 20 * MS, 0]),
            },
        );
        assert!(outputs.is_empty());

        let outputs = s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(25 * MS),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, c),
            Some(ClientReply::Get(_))
        ));
    }

    #[test]
    fn put_blocks_on_missing_dependencies_when_configured() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(2);
        let key = key_in(0, 1);

        let outputs = s.handle_client_request(
            c,
            ClientRequest::Put {
                key,
                value: Value::from("w"),
                dv: dv(&[0, 0, 30 * MS]),
            },
        );
        assert!(outputs.is_empty(), "the PUT must be parked");

        // Once replica 2's heartbeat covers the dependency the PUT is applied and
        // replicated.
        let outputs = s.handle_server_message(
            ServerId::new(2u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(31 * MS),
            },
        );
        let ut = expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::Put { update_time }) => update_time,
        );
        // The new version's timestamp must exceed all its dependencies (Proposition 2).
        assert!(ut > Timestamp(30 * MS));
        assert_eq!(
            outputs
                .iter()
                .filter(|o| matches!(o, ServerOutput::Send { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn put_does_not_block_when_dependency_wait_is_disabled() {
        let cfg = Config::builder()
            .num_replicas(3)
            .num_partitions(1)
            .put_waits_for_dependencies(false)
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::Put {
                key: key_in(0, 1),
                value: Value::from("w"),
                dv: dv(&[0, 0, 30 * MS]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::Put { .. })
        ));
        assert_eq!(s.metrics().blocked_operations, 0);
    }

    #[test]
    fn put_timestamp_exceeds_dependencies_even_with_a_lagging_clock() {
        let cfg = config(3, 1);
        // The local clock lags behind the dependency timestamps.
        let clock = ManualClock::new(Timestamp(5 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        // Dependencies are local-only so the PUT does not park.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key: key_in(0, 1),
                value: Value::from("w"),
                dv: dv(&[8 * MS, 0, 0]),
            },
        );
        let ut = expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Put { update_time }) => update_time,
        );
        assert!(ut > Timestamp(8 * MS));
        assert!(s.metrics().clock_wait_time > Duration::ZERO);
    }

    #[test]
    fn replication_applies_remote_updates_and_advances_the_vector() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        let version = Version::new(
            key,
            Value::from("remote"),
            ReplicaId(2),
            Timestamp(9 * MS),
            dv(&[0, 0, 0]),
        );
        let outputs = s.handle_server_message(
            ServerId::new(2u16, 0u32),
            ServerMessage::Replicate { version },
        );
        assert!(outputs.is_empty());
        assert_eq!(s.version_vector().get(ReplicaId(2)), Timestamp(9 * MS));
        assert_eq!(s.store().latest(key).unwrap().value.as_slice(), b"remote");
        assert_eq!(s.metrics().replicate_received, 1);
    }

    #[test]
    fn optimistic_get_returns_unstable_remote_version() {
        // The defining behaviour of OCC: a remote version whose dependencies are missing
        // locally is still returned to a client with no matching dependency.
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        // The replicated version depends on something from replica 2 this server lacks.
        let version = Version::new(
            key,
            Value::from("unstable"),
            ReplicaId(1),
            Timestamp(9 * MS),
            dv(&[0, 0, 50 * MS]),
        );
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version },
        );
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"unstable");
                // The client inherits the unresolved dependency through the metadata.
                assert_eq!(resp.deps, dv(&[0, 0, 50 * MS]));
            }
        );
    }

    #[test]
    fn tick_emits_heartbeats_when_idle() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.tick();
        let heartbeats: Vec<_> = outputs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::Heartbeat { .. },
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(heartbeats.len(), 2);
        assert_eq!(s.version_vector().get(ReplicaId(0)), Timestamp(10 * MS));

        // Within the same heartbeat interval no further heartbeat is sent.
        clock.set(Timestamp(10 * MS + 500));
        let outputs = s.tick();
        assert!(outputs.iter().all(|o| !matches!(
            o,
            ServerOutput::Send {
                message: ServerMessage::Heartbeat { .. },
                ..
            }
        )));
    }

    #[test]
    fn single_partition_transaction_completes_inline() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("t"),
                dv: dv(&[0, 0, 0]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].key, key);
                assert_eq!(items[0].response.value.as_ref().unwrap().as_slice(), b"t");
            }
        );
        assert_eq!(s.metrics().rotx_served, 1);
        assert_eq!(s.metrics().slices_served, 1);
    }

    #[test]
    fn empty_transaction_returns_immediately() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![],
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) if items.is_empty()
        ));
    }

    #[test]
    fn multi_partition_transaction_uses_slice_requests() {
        let cfg = config(3, 4);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut coordinator = server(0, 0, &cfg, &clock);
        let mut participant = server(0, 1, &cfg, &clock);

        let local_key = key_in(0, 4);
        let remote_key = key_in(1, 4);

        // Seed both partitions.
        coordinator.handle_client_request(
            ClientId(9),
            ClientRequest::Put {
                key: local_key,
                value: Value::from("local"),
                dv: dv(&[0, 0, 0]),
            },
        );
        participant.handle_client_request(
            ClientId(9),
            ClientRequest::Put {
                key: remote_key,
                value: Value::from("remote"),
                dv: dv(&[0, 0, 0]),
            },
        );

        // The client asks the coordinator for both keys.
        let client = ClientId(1);
        let outputs = coordinator.handle_client_request(
            client,
            ClientRequest::RoTx {
                keys: vec![local_key, remote_key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        // No reply yet: the remote slice is outstanding.
        assert!(extract_reply(&outputs, client).is_none());
        let (to, slice_req) = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    to,
                    message: m @ ServerMessage::SliceRequest { .. },
                } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("a slice request must be sent to the peer partition");
        assert_eq!(to, ServerId::new(0u16, 1u32));

        // The participant serves the slice...
        let outputs = participant.handle_server_message(coordinator.server_id(), slice_req);
        let (back_to, slice_resp) = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    to,
                    message: m @ ServerMessage::SliceResponse { .. },
                } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("a slice response must be produced");
        assert_eq!(back_to, coordinator.server_id());

        // ... and the coordinator assembles the final reply.
        let outputs = coordinator.handle_server_message(participant.server_id(), slice_resp);
        expect_reply!(
            extract_reply(&outputs, client),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 2);
                let mut values: Vec<_> = items
                    .iter()
                    .map(|i| i.response.value.as_ref().unwrap().as_slice().to_vec())
                    .collect();
                values.sort();
                assert_eq!(values, vec![b"local".to_vec(), b"remote".to_vec()]);
            }
        );
        assert_eq!(coordinator.metrics().rotx_served, 1);
    }

    #[test]
    fn slice_request_blocks_until_snapshot_is_installed() {
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut participant = server(0, 1, &cfg, &clock);
        let coordinator_id = ServerId::new(0u16, 0u32);
        let key = key_in(1, 2);

        // Snapshot requires replica 1 up to 20 ms; the participant has seen nothing.
        let outputs = participant.handle_server_message(
            coordinator_id,
            ServerMessage::SliceRequest {
                tx: TxId(1),
                client: ClientId(5),
                keys: vec![key],
                snapshot: dv(&[0, 20 * MS, 0]),
            },
        );
        assert!(outputs.is_empty());
        assert_eq!(participant.metrics().blocked_operations, 1);

        // A heartbeat from replica 1 covering the snapshot unblocks the slice. The local
        // entry of the snapshot is zero so the local clock needs no advance.
        let outputs = participant.handle_server_message(
            ServerId::new(1u16, 1u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(25 * MS),
            },
        );
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Send {
                to,
                message: ServerMessage::SliceResponse { .. },
            } if *to == coordinator_id
        )));
    }

    #[test]
    fn transaction_snapshot_excludes_versions_beyond_the_snapshot() {
        // A fresher version arriving after the snapshot was fixed must not be returned by
        // the slice read, even though a plain GET would return it.
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("old"),
                dv: dv(&[0, 0, 0]),
            },
        );
        // Fix the snapshot now (VV[0] = 10ms).
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items[0].response.value.as_ref().unwrap().as_slice(), b"old");
            }
        );

        // Now a newer write lands and a *new* transaction sees it.
        clock.set(Timestamp(20 * MS));
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("new"),
                dv: dv(&[10 * MS, 0, 0]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items[0].response.value.as_ref().unwrap().as_slice(), b"new");
            }
        );
    }

    #[test]
    fn blocked_get_times_out_into_a_session_abort() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(3);
        let outputs = s.handle_client_request(
            c,
            ClientRequest::Get {
                key: key_in(0, 1),
                rdv: dv(&[0, 999 * MS, 0]),
            },
        );
        assert!(outputs.is_empty());

        // Before the timeout nothing happens.
        clock.set(Timestamp(100 * MS));
        let outputs = s.tick();
        assert!(extract_reply(&outputs, c).is_none());

        // After the partition-detection timeout the session is closed.
        clock.set(Timestamp(600 * MS));
        let outputs = s.tick();
        expect_reply!(
            extract_reply(&outputs, c),
            Some(ClientReply::SessionAborted { reason }) => {
                assert!(reason.contains("missing read dependency"));
            }
        );
        assert_eq!(s.metrics().sessions_aborted, 1);
        assert_eq!(s.metrics().currently_blocked, 0);
    }

    #[test]
    fn coordinated_transaction_times_out_into_a_session_abort() {
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let c = ClientId(3);
        // The transaction involves the peer partition, whose response never arrives.
        let outputs = s.handle_client_request(
            c,
            ClientRequest::RoTx {
                keys: vec![key_in(1, 2)],
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(extract_reply(&outputs, c).is_none());
        clock.set(Timestamp(600 * MS));
        let outputs = s.tick();
        assert!(matches!(
            extract_reply(&outputs, c),
            Some(ClientReply::SessionAborted { .. })
        ));
        // A late slice response is ignored without panicking.
        let outputs = s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::SliceResponse {
                tx: TxId(0),
                items: vec![],
            },
        );
        assert!(outputs.is_empty());
    }

    #[test]
    fn gc_round_exchanges_vectors_and_collects_old_versions() {
        let cfg = Config::builder()
            .num_replicas(1)
            .num_partitions(2)
            .gc_interval(Duration::from_millis(10))
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 2);
        for i in 1..=5u64 {
            clock.set(Timestamp((10 + i) * MS));
            s.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(i),
                    dv: dv(&[(10 + i - 1) * MS]),
                },
            );
        }
        assert_eq!(s.store().stats().versions, 5);

        // First tick initiates the GC exchange and sends the contribution to the peer.
        clock.set(Timestamp(30 * MS));
        let outputs = s.tick();
        assert!(outputs.iter().any(|o| matches!(
            o,
            ServerOutput::Send {
                message: ServerMessage::GcVector { .. },
                ..
            }
        )));

        // The peer's contribution arrives, covering everything.
        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::GcVector {
                vector: dv(&[100 * MS]),
            },
        );
        clock.set(Timestamp(50 * MS));
        s.tick();
        // Only the newest version survives (it is the first one covered by the GC vector).
        assert_eq!(s.store().stats().versions, 1);
        assert!(s.metrics().gc_versions_removed >= 4);
    }

    #[test]
    fn batched_replication_defers_to_tick_and_preserves_order() {
        let cfg = Config::builder()
            .num_replicas(2)
            .num_partitions(1)
            .replication_batching(true)
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut sender = server(0, 0, &cfg, &clock);
        let mut receiver = PoccServer::new(ServerId::new(1u16, 0u32), cfg, clock.clone());
        let key = key_in(0, 1);

        // Two PUTs: replies come back immediately, replication is buffered.
        for (t, v) in [(10u64, "a"), (11, "b")] {
            clock.set(Timestamp(t * MS));
            let outputs = sender.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(v),
                    dv: dv(&[0, 0]),
                },
            );
            assert!(matches!(
                extract_reply(&outputs, ClientId(1)),
                Some(ClientReply::Put { .. })
            ));
            assert!(
                !outputs
                    .iter()
                    .any(|o| matches!(o, ServerOutput::Send { .. })),
                "replication must be buffered, not sent inline"
            );
        }
        // Per-message metrics are still counted at stage time.
        assert_eq!(sender.metrics().replicate_sent, 2);
        assert_eq!(sender.metrics().batches_sent, 0);

        // The next tick flushes one batch (before any heartbeat) carrying both versions
        // in timestamp order.
        clock.set(Timestamp(12 * MS));
        let outputs = sender.tick();
        let (to, batch) = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    to,
                    message: m @ ServerMessage::Batch { .. },
                } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("a batch must flush on tick");
        assert_eq!(to, receiver.server_id());
        assert_eq!(sender.metrics().batches_sent, 1);
        let batch_pos = outputs
            .iter()
            .position(|o| {
                matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::Batch { .. },
                        ..
                    }
                )
            })
            .unwrap();
        let hb_pos = outputs.iter().position(|o| {
            matches!(
                o,
                ServerOutput::Send {
                    message: ServerMessage::Heartbeat { .. },
                    ..
                }
            )
        });
        if let Some(hb_pos) = hb_pos {
            assert!(batch_pos < hb_pos, "the batch must precede the heartbeat");
        }

        // Applying the batch installs both versions and advances the version vector as if
        // the messages had arrived individually.
        receiver.handle_server_message(sender.server_id(), batch);
        assert_eq!(receiver.metrics().replicate_received, 2);
        assert_eq!(receiver.store().latest(key).unwrap().value.as_slice(), b"b");
        assert_eq!(
            receiver.version_vector().get(ReplicaId(0)),
            Timestamp(11 * MS)
        );
        assert_eq!(sender.digest(), receiver.digest());
    }

    #[test]
    fn end_to_end_client_server_session_maintains_causality_metadata() {
        // Drive a Client (Algorithm 1) against a server and check Propositions 1 and 2.
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let mut client = Client::new(ClientId(1), s.server_id(), 3);
        let key = key_in(0, 1);

        // PUT X.
        let outputs =
            s.handle_client_request(client.client_id(), client.put(key, Value::from("x")));
        let reply = extract_reply(&outputs, client.client_id()).unwrap();
        client.process_reply(&reply).unwrap();
        let x_ut = match reply {
            ClientReply::Put { update_time } => update_time,
            _ => unreachable!(),
        };

        // GET X back, establishing a read dependency.
        clock.set(Timestamp(20 * MS));
        let outputs = s.handle_client_request(client.client_id(), client.get(key));
        let reply = extract_reply(&outputs, client.client_id()).unwrap();
        client.process_reply(&reply).unwrap();

        // PUT Y: its dependency vector must cover X (Proposition 1) and its timestamp must
        // exceed X's (Proposition 2).
        let outputs =
            s.handle_client_request(client.client_id(), client.put(key, Value::from("y")));
        let reply = extract_reply(&outputs, client.client_id()).unwrap();
        let y_ut = match &reply {
            ClientReply::Put { update_time } => *update_time,
            _ => unreachable!(),
        };
        client.process_reply(&reply).unwrap();
        assert!(y_ut > x_ut);
        let stored_y = s.store().latest(key).unwrap();
        assert!(stored_y.deps.get(ReplicaId(0)) >= x_ut);
    }
}
