//! Offline stand-in for the `crossbeam` facade, backed by `std::sync::mpsc`.
//!
//! Only the `channel` module surface the workspace uses is provided. Since Rust 1.72
//! `std::sync::mpsc` is itself implemented on top of crossbeam's channel algorithm and
//! `Sender` is `Sync`, so the std types are drop-in for this workspace's single-consumer
//! usage (each `Receiver` is owned by exactly one thread).

pub mod channel {
    //! MPSC channels with the `crossbeam::channel` names the workspace imports.

    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }
}
