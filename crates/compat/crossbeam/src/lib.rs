//! Offline stand-in for the `crossbeam` facade, backed by `std::sync::mpsc`.
//!
//! Only the `channel` module surface the workspace uses is provided. Since Rust 1.72
//! `std::sync::mpsc` is itself implemented on top of crossbeam's channel algorithm and
//! `Sender` is `Sync`, so the std types are drop-in for this workspace's single-consumer
//! usage (each `Receiver` is owned by exactly one thread).

pub mod channel {
    //! MPSC channels with the `crossbeam::channel` names the workspace imports.

    pub use std::sync::mpsc::{
        Receiver, RecvTimeoutError, SendError, Sender, SyncSender, TryRecvError, TrySendError,
    };

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Creates a bounded MPSC channel with capacity `cap`: sends block once `cap`
    /// messages are queued, which is what gives actor mailboxes backpressure.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn unbounded_round_trip_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }
}
