//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API this workspace uses: [`Bytes`] (a cheaply
//! cloneable, sliceable view into a shared, immutable buffer), [`BytesMut`] (a growable
//! buffer that freezes into `Bytes`), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the wire codec needs. Semantics match the real crate for this
//! subset; performance characteristics are similar (`Bytes::clone`, `slice` and
//! `split_to` are O(1) reference-count bumps).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Shared `Debug` body for both buffer types: print as a byte string like the real crate.
macro_rules! fmt_as_hex_list {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &byte in self.iter() {
                if byte.is_ascii_graphic() || byte == b' ' {
                    write!(f, "{}", byte as char)?;
                } else {
                    write!(f, "\\x{byte:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// A cheaply cloneable view into a shared, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The view as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Returns a sub-view of `range` (indices relative to this view) sharing the same
    /// allocation. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            buf: Arc::clone(&self.buf),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes, leaving the remainder in `self`.
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            buf: Arc::clone(&self.buf),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            buf: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_as_hex_list!();
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with at least `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, retaining its allocation. This is what makes a `BytesMut` a
    /// reusable encode scratch buffer: clear between messages and the backing storage
    /// is written in place instead of reallocated.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shortens the buffer to `len` bytes, keeping the front. No-op if the buffer is
    /// already shorter. Lets a staged-write scratch roll back a partially written suffix.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Freezes the buffer into an immutable, shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl fmt::Debug for BytesMut {
    fmt_as_hex_list!();
}

/// Read cursor over a byte buffer, consuming from the front.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads and consumes `n` bytes into the provided scratch; panics if underfull.
    fn copy_and_advance(&mut self, n: usize, out: &mut [u8]);

    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_and_advance(1, &mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_and_advance(2, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_and_advance(4, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_and_advance(8, &mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_and_advance(&mut self, n: usize, out: &mut [u8]) {
        assert!(n <= self.len(), "buffer underflow");
        out[..n].copy_from_slice(&self.as_slice()[..n]);
        self.start += n;
    }
}

/// Write cursor appending to the end of a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian_integers() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(u64::MAX - 1);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(&r[..], b"xy");
        assert!(r.has_remaining());
    }

    #[test]
    fn slice_and_split_share_the_allocation() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(&s.slice(1..)[..], &[2, 3]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&rest[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5, "the original view is untouched");
    }

    #[test]
    fn equality_and_hash_are_content_based() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![1, 2]);
        let b = Bytes::from(vec![0, 1, 2]).slice(1..);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn written_bytes_can_be_patched_in_place() {
        // Reserve a 4-byte length slot, append a payload, then backfill the slot —
        // the pattern the length-prefixed wire framer uses.
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(0);
        w.put_slice(b"payload");
        let len = (w.len() - 4) as u32;
        w[..4].copy_from_slice(&len.to_le_bytes());
        let mut r = w.freeze();
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(&r[..], b"payload");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reading_past_the_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u16_le();
    }
}
