//! Offline mini stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`boxed`, integer-range and `any::<T>()`
//! strategies, tuple/vec/option combinators, a simple `[a-b]{m,n}` string-pattern
//! strategy, `prop_oneof!`, and the [`proptest!`] test macro with
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics with the
//! sampled inputs in the assertion message. Sampling is deterministic — each test's RNG
//! is seeded from its name, so failures reproduce exactly under `cargo test`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many cases each `proptest!` test runs.
pub const NUM_CASES: usize = 128;

/// The deterministic RNG driving a property test.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from `name` (typically the test function's name), so every
    /// test draws a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound.max(1))
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice among type-erased alternatives (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given alternatives. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------------------

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary {
    /// Samples a value uniformly over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen::<u64>() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.start as i64..self.end as i64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(*self.start() as i64..=*self.end() as i64) as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, i32, i64);

// `u64` and `usize` need the full-width sampler (casting through `i64` would truncate).
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.0.gen::<u64>()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.0.gen::<u64>() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen::<bool>()
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A `&str` pattern as a strategy, supporting the `[a-b]{m,n}` character-class shape
/// (e.g. `"[ -~]{0,40}"`); any other pattern falls back to printable ASCII of length
/// 0 to 32.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min, max) = parse_class_pattern(self).unwrap_or((b' ', b'~', 0, 32));
        let len = rng.0.gen_range(min..=max);
        (0..len)
            .map(|_| rng.0.gen_range(lo as u64..=hi as u64) as u8 as char)
            .collect()
    }
}

/// Parses `[a-b]{m,n}` into `(a, b, m, n)`.
fn parse_class_pattern(pattern: &str) -> Option<(u8, u8, usize, usize)> {
    let bytes = pattern.as_bytes();
    let class_end = pattern.find(']')?;
    if bytes.first() != Some(&b'[') || class_end != 4 || bytes.get(2) != Some(&b'-') {
        return None;
    }
    let (lo, hi) = (bytes[1], bytes[3]);
    let counts = pattern[class_end + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    Some((lo, hi, min.parse().ok()?, max.parse().ok()?))
}

// ---------------------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The number of elements a [`vec()`] strategy produces: a fixed count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of values drawn from `element`, with a length drawn
    /// from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.min..=self.size.max).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy producing `None` about a quarter of the time and `Some` of `inner`'s
    /// values otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if (0usize..4).generate(rng) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` running [`NUM_CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// A strategy choosing uniformly among the given alternative strategies (which may have
/// different concrete types but must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::option;
    pub use crate::{any, Arbitrary, BoxedStrategy, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_domain() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let a = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (0u16..3).generate(&mut rng);
            assert!(b < 3);
            let _ = any::<u64>().generate(&mut rng);
            let c = any::<u8>().generate(&mut rng);
            let _ = c;
        }
    }

    #[test]
    fn map_tuple_vec_option_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = collection::vec((0u64..10, 0u16..3).prop_map(|(a, b)| a + b as u64), 0..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| x < 12));
        }
        let opt = option::of(1u64..2);
        let mut nones = 0;
        for _ in 0..200 {
            if opt.generate(&mut rng).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 10 && nones < 120, "None ratio plausible: {nones}");
    }

    #[test]
    fn oneof_draws_every_arm() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = prop_oneof![(0u64..1).prop_map(|_| 1u64), (0u64..1).prop_map(|_| 2u64)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = "[ -~]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.bytes().all(|b| (b' '..=b'~').contains(&b)));
            let t = "[a-c]{2,2}".generate(&mut rng);
            assert_eq!(t.len(), 2);
            assert!(t.bytes().all(|b| (b'a'..=b'c').contains(&b)));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, ys in collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }
}
