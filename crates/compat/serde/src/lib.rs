//! No-op stand-in for `serde`, used because this workspace builds fully offline.
//!
//! Only the `Serialize`/`Deserialize` derive names are provided (they expand to nothing);
//! the workspace serialises wire messages with the hand-rolled binary codec in
//! `pocc-proto` and never calls serde itself. See `crates/compat/README.md`.

pub use serde_derive::{Deserialize, Serialize};
