//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot` lock API the workspace uses — `lock()`/`read()`/`write()`
//! returning guards directly, without a poison `Result`. Poisoned locks panic, which
//! matches how the workspace treats a panicked thread holding a lock: unrecoverable.

use std::sync::{self, TryLockError};
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly (panics if poisoned).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Attempts to acquire the mutex without blocking; `None` if it is held
    /// (panics if poisoned).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(_)) => panic!("mutex poisoned"),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly (panic if poisoned).
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_only_while_held() {
        let m = Mutex::new(1);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("uncontended"), 1);
    }

    #[test]
    fn rwlock_allows_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
