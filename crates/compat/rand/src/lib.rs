//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API this workspace uses, backed by a
//! SplitMix64 generator: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait with `gen`/`gen_range` over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed (they do **not**
//! match the real crate's streams, which is fine: every consumer in this workspace only
//! relies on determinism, not on a specific stream).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a full-range generator (`rng.gen()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Samples one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling, avoiding modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing extension trait: sampling helpers on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly over its natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one add + three xors.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen reference into the slice, or `None` if it is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1_300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_and_choose_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
        assert_ne!(
            v, original,
            "a 32-element shuffle is almost surely non-identity"
        );
        assert!(original.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
