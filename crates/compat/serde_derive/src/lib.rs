//! No-op stand-in for `serde_derive`, used because this workspace builds fully offline.
//!
//! The derives expand to nothing: the workspace serialises messages with the hand-rolled
//! binary codec in `pocc-proto`, so the serde trait impls were never called. Keeping the
//! derive attributes in the type definitions preserves source compatibility with the real
//! `serde` should the workspace ever gain registry access.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate-level documentation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate-level documentation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
