//! Lock-free publication of the engine's version vector as per-replica atomics.
//!
//! The spine publishes version-vector advances after every pipeline sweep; lanes read
//! the publication on every snapshot-covered GET and RO-TX. A whole-vector
//! `RwLock<VersionVector>` makes that read a lock acquisition on the hottest read path,
//! and the clone-on-sweep write an allocation on the hottest write path. Publishing one
//! `AtomicU64` per replica instead makes the reader wait-free and the writer a handful
//! of `fetch_max` instructions.
//!
//! Entries only ever advance (the engine's vector is monotone), so `fetch_max` with
//! release ordering is sufficient on the write side: a reader that observes entry `r` at
//! `t` (acquire) also observes every store insert that happened before the publication —
//! exactly the coverage claim `VersionVector::covers*` encodes. A concurrent reader may
//! see some entries from an older publication than others; such a mixed view is
//! entry-wise *below* the newest publication, which can only make a coverage check more
//! conservative, never wrong.

use pocc_types::{DependencyVector, ReplicaId, Timestamp, VersionVector};
use std::sync::atomic::{AtomicU64, Ordering};

/// A version vector published as one atomic timestamp per replica. See the module docs
/// for the memory-ordering contract.
pub struct PublishedVector {
    entries: Box<[AtomicU64]>,
}

impl PublishedVector {
    /// Starts from the entries of `vv` (normally the engine's vector at server start).
    pub fn new(vv: &VersionVector) -> Self {
        let entries = (0..vv.len())
            .map(|i| AtomicU64::new(vv.get(ReplicaId(i as u16)).as_micros()))
            .collect();
        PublishedVector { entries }
    }

    /// Number of replica entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The published timestamp for `replica`.
    pub fn get(&self, replica: ReplicaId) -> Timestamp {
        Timestamp::from_micros(self.entries[replica.0 as usize].load(Ordering::Acquire))
    }

    /// Advances the entry for `replica` to at least `ts` (entries never move backwards).
    pub fn advance(&self, replica: ReplicaId, ts: Timestamp) {
        self.entries[replica.0 as usize].fetch_max(ts.as_micros(), Ordering::AcqRel);
    }

    /// Advances every entry to at least the corresponding entry of `vv`.
    pub fn refresh_from(&self, vv: &VersionVector) {
        for (i, entry) in self.entries.iter().enumerate() {
            entry.fetch_max(vv.get(ReplicaId(i as u16)).as_micros(), Ordering::AcqRel);
        }
    }

    /// Materialises the publication as a plain [`VersionVector`] (one acquire load per
    /// entry; entries may stem from different publications — see the module docs for
    /// why that is safe).
    pub fn load(&self) -> VersionVector {
        let mut vv = VersionVector::zero(self.entries.len());
        for (i, entry) in self.entries.iter().enumerate() {
            vv.set(
                ReplicaId(i as u16),
                Timestamp::from_micros(entry.load(Ordering::Acquire)),
            );
        }
        vv
    }

    /// Whether the publication covers `deps` on every entry except `local` — the lane
    /// GET fast-path check, answering exactly like
    /// [`VersionVector::covers_dependencies_except_local`] on a vector the publication
    /// dominates.
    pub fn covers_dependencies_except_local(
        &self,
        deps: &DependencyVector,
        local: ReplicaId,
    ) -> bool {
        self.entries.iter().enumerate().all(|(i, entry)| {
            let replica = ReplicaId(i as u16);
            replica == local || deps.get(replica).as_micros() <= entry.load(Ordering::Acquire)
        })
    }

    /// Whether the publication covers `deps` on every entry (the RO-TX fast-path check:
    /// the snapshot `published ∨ deps` then equals the publication itself).
    pub fn covers(&self, deps: &DependencyVector) -> bool {
        self.entries.iter().enumerate().all(|(i, entry)| {
            deps.get(ReplicaId(i as u16)).as_micros() <= entry.load(Ordering::Acquire)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn dv(entries: &[u64]) -> DependencyVector {
        let mut v = DependencyVector::zero(entries.len());
        for (i, &ts) in entries.iter().enumerate() {
            v.set(ReplicaId(i as u16), Timestamp::from_micros(ts));
        }
        v
    }

    #[test]
    fn advance_is_monotone_and_load_round_trips() {
        let published = PublishedVector::new(&VersionVector::zero(3));
        published.advance(ReplicaId(1), Timestamp::from_micros(10));
        published.advance(ReplicaId(1), Timestamp::from_micros(5));
        assert_eq!(published.get(ReplicaId(1)), Timestamp::from_micros(10));
        assert_eq!(published.get(ReplicaId(0)), Timestamp::ZERO);
        let vv = published.load();
        assert_eq!(vv.get(ReplicaId(1)), Timestamp::from_micros(10));
    }

    #[test]
    fn covers_checks_match_the_locked_vector() {
        let mut vv = VersionVector::zero(3);
        vv.set(ReplicaId(0), Timestamp::from_micros(7));
        vv.set(ReplicaId(2), Timestamp::from_micros(20));
        let published = PublishedVector::new(&vv);
        for deps in [
            dv(&[0, 0, 0]),
            dv(&[7, 0, 20]),
            dv(&[8, 0, 0]),
            dv(&[0, 1, 0]),
            dv(&[0, 0, 21]),
        ] {
            for local in 0..3 {
                let local = ReplicaId(local);
                assert_eq!(
                    published.covers_dependencies_except_local(&deps, local),
                    vv.covers_dependencies_except_local(&deps, local),
                    "deps {deps:?} local {local:?}"
                );
            }
            assert_eq!(published.covers(&deps), vv.covers(&deps), "deps {deps:?}");
        }
    }

    /// The concurrent contract: while writers advance entries, any `true` coverage
    /// answer must also hold against the final (fully advanced) vector — a publication
    /// never claims coverage it does not have.
    #[test]
    fn concurrent_advances_never_overclaim_coverage() {
        const WRITERS: usize = 3;
        const ADVANCES: u64 = 2_000;
        let published = Arc::new(PublishedVector::new(&VersionVector::zero(WRITERS)));
        let handles: Vec<_> = (0..WRITERS as u16)
            .map(|r| {
                let published = Arc::clone(&published);
                std::thread::spawn(move || {
                    for ts in 1..=ADVANCES {
                        published.advance(ReplicaId(r), Timestamp::from_micros(ts));
                    }
                })
            })
            .collect();

        let mut claimed = Vec::new();
        for probe in (0..ADVANCES).step_by(37) {
            let deps = dv(&[probe, probe, probe]);
            if published.covers(&deps) {
                claimed.push(deps);
            }
        }
        for handle in handles {
            handle.join().expect("writer thread");
        }
        let fin = published.load();
        for deps in claimed {
            assert!(
                fin.covers(&deps),
                "claimed coverage of {deps:?} must persist"
            );
        }
        assert_eq!(fin.get(ReplicaId(0)), Timestamp::from_micros(ADVANCES));
    }

    mod properties {
        use super::*;
        use parking_lot::RwLock;
        use proptest::prelude::*;

        const REPLICAS: usize = 4;

        fn arb_advances() -> impl Strategy<Value = Vec<(u16, u64)>> {
            proptest::collection::vec((0u16..REPLICAS as u16, 1u64..1_000_000), 0..64)
        }

        fn arb_deps() -> impl Strategy<Value = Vec<u64>> {
            proptest::collection::vec(0u64..1_000_000, REPLICAS)
        }

        proptest! {
            /// The same multiset of advances, applied to the atomic publication from
            /// several threads concurrently and to an `RwLock<VersionVector>` serially,
            /// must answer `covers_dependencies_except_local` (and `covers`)
            /// identically for any query once the advances are done — `fetch_max` is
            /// commutative, so interleaving cannot change the fixpoint.
            #[test]
            fn prop_atomic_snapshot_matches_locked_vector(
                advances in arb_advances(),
                deps in arb_deps(),
                local in 0u16..REPLICAS as u16,
            ) {
                let locked = RwLock::new(VersionVector::zero(REPLICAS));
                for &(r, ts) in &advances {
                    locked.write().advance(ReplicaId(r), Timestamp::from_micros(ts));
                }

                let published = Arc::new(PublishedVector::new(&VersionVector::zero(REPLICAS)));
                let workers: Vec<_> = (0..3)
                    .map(|w| {
                        let published = Arc::clone(&published);
                        let slice: Vec<_> = advances
                            .iter()
                            .copied()
                            .skip(w)
                            .step_by(3)
                            .collect();
                        std::thread::spawn(move || {
                            for (r, ts) in slice {
                                published.advance(ReplicaId(r), Timestamp::from_micros(ts));
                            }
                        })
                    })
                    .collect();
                for handle in workers {
                    handle.join().expect("advance thread");
                }

                let deps = dv(&deps);
                let local = ReplicaId(local);
                let vv = locked.read();
                prop_assert_eq!(
                    published.covers_dependencies_except_local(&deps, local),
                    vv.covers_dependencies_except_local(&deps, local)
                );
                prop_assert_eq!(published.covers(&deps), vv.covers(&deps));
                prop_assert_eq!(published.load(), vv.clone());
            }
        }
    }
}
