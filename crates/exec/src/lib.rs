//! Threaded shard-parallel execution of the protocol engine.
//!
//! The deterministic simulator (`pocc-sim`) runs every server as a single-threaded state
//! machine, which makes behaviour reproducible but turns every throughput number into a
//! microbench claim. This crate makes the cores actually work: a [`ParallelServer`] runs
//! one protocol engine behind a set of *worker lanes* — real OS threads with bounded
//! mailboxes — so PUT and GET processing of disjoint key ranges proceeds concurrently
//! while the engine's protocol logic (replication, heartbeats, stabilization, parked
//! operations, transactions) stays exactly the code the simulator exercises.
//!
//! # Execution model
//!
//! * **Lanes.** Client operations are key-hash-routed to `Config::worker_lanes` worker
//!   threads (`lane = shard(key) % lanes`), each with a bounded mailbox (actor shape;
//!   a full mailbox applies backpressure to the submitting thread). Lanes own disjoint
//!   sets of storage shards, so their version-chain inserts never contend.
//! * **Spine.** Everything protocol-visible that is *not* per-key — the version vector,
//!   GSS bookkeeping, parked operations, transaction coordination, metrics — lives in
//!   the unmodified [`pocc_engine::ProtocolEngine`] behind a single mutex, the *spine*.
//!   Server-to-server messages and ticks are handled there.
//! * **Write pipelining.** A lane serving an eligible PUT only takes the spine lock long
//!   enough to *reserve* a timestamp (the same clock/dependency floor rule as the serial
//!   `serve_put`); the chain insert then happens outside the lock. Reservations are
//!   published back into the engine — version-vector advance plus replication fan-out —
//!   strictly in timestamp order, and any engine call first drains the pipeline, so the
//!   engine never observes a version vector ahead of the store (a heartbeat promising a
//!   timestamp while a smaller-timestamped write is still in flight would break the
//!   sibling replicas' coverage reasoning).
//! * **Remote-apply pipelining.** Replicated versions from sibling replicas — (R−1)×
//!   the local write volume in an R-replica deployment — are queued on a per-origin
//!   FIFO and routed to their key's lane, which installs them into the sharded store
//!   without the spine lock. The spine absorbs the installed prefix of each origin
//!   queue on its next sweep (version-vector advance, replication accounting, policy
//!   `on_replicate` hook), in per-origin timestamp order, so its coverage promises
//!   never run ahead of the store. A drain that finds unstarted remote slots installs
//!   them itself (claim-based helping) rather than waiting on a lane that may itself be
//!   blocked on the spine.
//! * **Epoch snapshots for readers.** The spine publishes the engine's version vector
//!   as one atomic timestamp per replica ([`PublishedVector`]) after every sweep. A
//!   batch consisting purely of GETs whose dependencies are covered by the publication
//!   — and, under POCC, entirely-local read-only transactions whose snapshot it covers
//!   — is served straight from the sharded store without taking any lock at all:
//!   readers never touch the write path, not even a read-lock.
//!
//! What stays deterministic under threads: per-key final state (convergence digests),
//! causal consistency (the checker passes), and order-insensitive metric totals.
//! What does not: operation interleavings, timestamps and latency distributions. The
//! differential suite in `tests/parallel_equivalence.rs` pins the former against the
//! simulator for all four protocols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;
mod snapshot;

pub use server::{OutputSink, ParallelServer, ServerClosed};
pub use snapshot::PublishedVector;

use pocc_clock::Clock;
use pocc_engine::VisibilityPolicy;
use pocc_types::{Config, Timestamp};

/// Which of the four protocol variants a [`ParallelServer`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecProtocol {
    /// Plain POCC: optimistic freshest reads.
    Pocc,
    /// Cure\*: pessimistic GSS-stable reads.
    Cure,
    /// HA-POCC: optimistic with partition-tolerant mode switching.
    HaPocc,
    /// Adaptive: per-key churn-based fallback from optimistic to stable-bounded reads.
    Adaptive,
}

impl ExecProtocol {
    /// Builds the protocol's visibility policy, boxed so one engine type serves all four
    /// variants.
    pub fn policy<C: Clock>(self, config: &Config, now: Timestamp) -> Box<dyn VisibilityPolicy<C>> {
        match self {
            ExecProtocol::Pocc => Box::new(pocc_protocol::PoccPolicy),
            ExecProtocol::Cure => Box::new(pocc_cure::CurePolicy),
            ExecProtocol::HaPocc => Box::new(pocc_ha::HaPolicy::new(config, now)),
            ExecProtocol::Adaptive => Box::new(pocc_adaptive::AdaptivePolicy::default()),
        }
    }

    /// Which operations the lanes may serve without going through the full policy
    /// dispatch on the spine.
    pub fn fast_path(self) -> FastPathProfile {
        match self {
            // POCC reads are freshest-version chain-head reads: a lane can serve them
            // from the shared store once the client's remote dependencies are covered.
            ExecProtocol::Pocc => FastPathProfile {
                puts: true,
                puts_check_deps: true,
                gets: true,
            },
            // Cure* PUTs are unconditional, but its GETs do GSS staleness accounting on
            // the engine, so reads go through the spine.
            ExecProtocol::Cure => FastPathProfile {
                puts: true,
                puts_check_deps: false,
                gets: false,
            },
            // HA-POCC records *every* client request in its session bookkeeping (the
            // optimistic-client set consulted on fallback aborts), so no operation may
            // bypass the policy.
            ExecProtocol::HaPocc => FastPathProfile {
                puts: false,
                puts_check_deps: true,
                gets: false,
            },
            // Adaptive PUTs are POCC PUTs (local writes do not touch the churn
            // classifier), but GETs consult per-key policy state.
            ExecProtocol::Adaptive => FastPathProfile {
                puts: true,
                puts_check_deps: true,
                gets: false,
            },
        }
    }
}

/// Which operation kinds a protocol allows the worker lanes to serve directly, bypassing
/// the policy dispatch on the spine. Derived from each policy's semantics — see
/// [`ExecProtocol::fast_path`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FastPathProfile {
    /// Whether lanes may pipeline eligible PUTs (reserve a timestamp, insert off-lock).
    pub puts: bool,
    /// Whether PUT eligibility requires the client's remote dependencies to be covered
    /// (POCC's configurable wait); `false` means PUTs are unconditionally eligible.
    pub puts_check_deps: bool,
    /// Whether lanes may serve dependency-covered GETs — and, when the published
    /// snapshot covers them, entirely-local read-only transactions — from the store
    /// directly.
    pub gets: bool,
}
