//! The threaded server: worker lanes over a spine-locked protocol engine.

use crate::{ExecProtocol, FastPathProfile};
use crossbeam::channel::{bounded, Receiver, SyncSender};
use parking_lot::{Mutex, RwLock};
use pocc_clock::Clock;
use pocc_engine::{ProtocolEngine, VisibilityPolicy};
use pocc_proto::{
    ClientReply, ClientRequest, GetResponse, MetricsSnapshot, ProtocolServer, ServerIntrospect,
    ServerMessage, ServerOutput,
};
use pocc_storage::{shard_for_key, ShardStats, ShardedStore, StoreStats};
use pocc_types::{
    ClientId, Config, DependencyVector, Key, ReplicaId, ServerId, Timestamp, Version, VersionVector,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Where a [`ParallelServer`] delivers its replies and server-to-server messages.
///
/// The sink is called from lane threads and from whichever thread drives
/// [`ParallelServer::handle_server_message`]/[`ParallelServer::tick`], sometimes while
/// internal locks are held — it must not block (enqueueing on an unbounded channel, as
/// the cluster runtime does, is the intended shape).
pub type OutputSink = Arc<dyn Fn(ServerOutput) + Send + Sync>;

/// One engine driving all four protocols through a boxed policy.
type Engine<C> = ProtocolEngine<C, Box<dyn VisibilityPolicy<C>>>;

/// Mailbox capacity per lane; a full mailbox blocks the submitter (backpressure).
const MAILBOX: usize = 1024;
/// Maximum operations a lane coalesces into one batch (amortises spine locking).
const BATCH: usize = 64;

enum LaneMsg {
    Op(ClientId, ClientRequest),
    Shutdown,
}

/// A timestamp reserved for an in-flight pipelined PUT. The lane completes the slot
/// (version installed in the store) without any lock; the spine publishes completed
/// reservations in FIFO — i.e. timestamp — order.
struct Slot {
    done: AtomicBool,
    version: Mutex<Option<Version>>,
}

struct Reservation {
    ts: Timestamp,
    slot: Arc<Slot>,
}

/// The spine: the full protocol engine plus the write pipeline, behind one mutex.
struct Spine<C> {
    engine: Engine<C>,
    /// In-flight PUT reservations, in reservation (= timestamp) order.
    pipe: VecDeque<Reservation>,
    /// Highest timestamp ever reserved; the floor for the next reservation, so lane
    /// timestamps stay strictly increasing even across pipeline drains.
    floor: Timestamp,
}

struct Shared<C> {
    id: ServerId,
    num_replicas: usize,
    num_shards: usize,
    put_waits_for_dependencies: bool,
    profile: FastPathProfile,
    /// Handle to the same sharded store the engine owns (lanes insert, readers read).
    store: ShardedStore,
    spine: Mutex<Spine<C>>,
    /// Epoch snapshot of the engine's version vector, refreshed after every pipeline
    /// drain. GET-only batches covered by it are served without touching the spine.
    published: RwLock<VersionVector>,
    /// GETs served directly by lanes (the engine's `gets_served` counter only sees
    /// spine-dispatched operations; probes add this in).
    lane_gets: AtomicU64,
    sink: OutputSink,
}

impl<C: Clock> Shared<C> {
    /// Publishes the contiguous prefix of completed reservations into the engine:
    /// version-vector advance, PUT accounting and replication fan-out, in timestamp
    /// order. Must be called with the spine lock held (hence `&mut Spine`).
    fn sweep(&self, spine: &mut Spine<C>) {
        let mut outputs = Vec::new();
        let mut published = false;
        while let Some(front) = spine.pipe.front() {
            if !front.slot.done.load(Ordering::Acquire) {
                break;
            }
            let res = spine.pipe.pop_front().expect("front exists");
            let version = res
                .slot
                .version
                .lock()
                .take()
                .expect("a completed reservation holds its version");
            let core = spine.engine.core_mut();
            core.vv.advance(self.id.replica, res.ts);
            core.metrics.puts_served += 1;
            for i in 0..core.siblings().len() {
                let sibling = core.siblings()[i];
                let msg = ServerMessage::Replicate {
                    version: version.clone(),
                };
                core.send_via_batcher(sibling, msg, &mut outputs);
            }
            published = true;
        }
        if published {
            // The local VV entry advanced: parked slices (and, after remote traffic,
            // parked client operations) may now be servable.
            spine.engine.core_mut().unpark(&mut outputs);
            *self.published.write() = spine.engine.core().vv.clone();
        }
        self.ship(outputs);
    }

    /// Waits until every in-flight reservation has been published. Lanes complete their
    /// slots without taking any lock, so spinning here (while holding the spine) cannot
    /// deadlock; a lane wanting to *reserve* simply blocks on the spine mutex.
    fn drain(&self, spine: &mut Spine<C>) {
        loop {
            self.sweep(spine);
            if spine.pipe.is_empty() {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Runs `f` against the engine with the pipeline fully drained — the only way any
    /// code outside the sweep may touch the engine. Outputs are shipped while the spine
    /// is still held, so replication order on the FIFO channels matches engine order.
    fn with_engine<R>(&self, f: impl FnOnce(&mut Engine<C>, &mut Vec<ServerOutput>) -> R) -> R {
        let mut spine = self.spine.lock();
        self.drain(&mut spine);
        let mut outputs = Vec::new();
        let r = f(&mut spine.engine, &mut outputs);
        // Heartbeats and handled messages may have advanced the local VV entry past the
        // reservation floor; keep future reservations above both.
        let local_vv = spine.engine.core().vv.get(self.id.replica);
        spine.floor = spine.floor.max(local_vv);
        *self.published.write() = spine.engine.core().vv.clone();
        self.ship(outputs);
        r
    }

    fn ship(&self, outputs: Vec<ServerOutput>) {
        for out in outputs {
            (self.sink)(out);
        }
    }

    /// Reserves the next PUT timestamp under the spine lock, mirroring `serve_put`'s
    /// floor rule: strictly above the client's dependencies, the local VV entry and
    /// every previous reservation.
    fn reserve(&self, spine: &mut Spine<C>, dv: &DependencyVector) -> Reservation {
        let core = spine.engine.core_mut();
        let now = core.clock.now();
        let floor = dv
            .max_entry()
            .max(core.vv.get(self.id.replica))
            .max(spine.floor);
        let ts = if now > floor {
            now
        } else {
            core.metrics.clock_wait_time +=
                floor.saturating_since(now) + std::time::Duration::from_micros(1);
            floor.tick()
        };
        spine.floor = ts;
        let slot = Arc::new(Slot {
            done: AtomicBool::new(false),
            version: Mutex::new(None),
        });
        spine.pipe.push_back(Reservation {
            ts,
            slot: Arc::clone(&slot),
        });
        Reservation { ts, slot }
    }

    /// Builds a GET payload the way the engine's `response_for` does.
    fn response_for(&self, version: Option<Version>) -> GetResponse {
        match version {
            Some(v) => GetResponse {
                value: Some(v.value),
                update_time: v.update_time,
                deps: v.deps,
                source_replica: v.source_replica,
            },
            None => GetResponse {
                value: None,
                update_time: Timestamp::ZERO,
                deps: DependencyVector::zero(self.num_replicas),
                source_replica: self.id.replica,
            },
        }
    }

    /// Serves a dependency-covered GET straight from the store (no spine).
    fn serve_lane_get(&self, client: ClientId, key: Key) {
        let response = self.response_for(self.store.latest(key));
        self.lane_gets.fetch_add(1, Ordering::Relaxed);
        (self.sink)(ServerOutput::reply(client, ClientReply::Get(response)));
    }
}

/// What a lane decided to do with one operation of a batch, holding the spine lock.
enum Classified {
    FastPut {
        client: ClientId,
        key: Key,
        value: pocc_types::Value,
        dv: DependencyVector,
        res: Reservation,
    },
    FastGet {
        client: ClientId,
        key: Key,
    },
    Defer {
        client: ClientId,
        request: ClientRequest,
    },
}

fn lane_loop<C: Clock + 'static>(shared: Arc<Shared<C>>, rx: Receiver<LaneMsg>) {
    loop {
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => return,
        };
        let mut batch = Vec::with_capacity(BATCH);
        let mut shutdown = false;
        match first {
            LaneMsg::Op(client, request) => batch.push((client, request)),
            LaneMsg::Shutdown => return,
        }
        while batch.len() < BATCH {
            match rx.try_recv() {
                Ok(LaneMsg::Op(client, request)) => batch.push((client, request)),
                Ok(LaneMsg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Err(_) => break,
            }
        }
        process_batch(&shared, batch);
        if shutdown {
            return;
        }
    }
}

fn process_batch<C: Clock + 'static>(shared: &Shared<C>, batch: Vec<(ClientId, ClientRequest)>) {
    // Reader fast path: a batch of GETs all covered by the published VV snapshot is
    // served entirely from the store, without the spine lock.
    if shared.profile.gets {
        let covered_by_snapshot = {
            let snapshot = shared.published.read();
            batch.iter().all(|(_, request)| match request {
                ClientRequest::Get { rdv, .. } => {
                    snapshot.covers_dependencies_except_local(rdv, shared.id.replica)
                }
                _ => false,
            })
        };
        if covered_by_snapshot {
            for (client, request) in batch {
                match request {
                    ClientRequest::Get { key, .. } => shared.serve_lane_get(client, key),
                    _ => unreachable!("only GETs were classified as covered"),
                }
            }
            return;
        }
    }

    // Classify under the spine lock (exact, live VV), then execute off-lock.
    let classified: Vec<Classified> = {
        let mut spine = shared.spine.lock();
        shared.sweep(&mut spine);
        batch
            .into_iter()
            .map(|(client, request)| match request {
                ClientRequest::Put { key, value, dv }
                    if shared.profile.puts
                        && (!shared.profile.puts_check_deps
                            || !shared.put_waits_for_dependencies
                            || spine.engine.core().covers_remote_deps(&dv)) =>
                {
                    let res = shared.reserve(&mut spine, &dv);
                    Classified::FastPut {
                        client,
                        key,
                        value,
                        dv,
                        res,
                    }
                }
                ClientRequest::Get { key, ref rdv }
                    if shared.profile.gets && spine.engine.core().covers_remote_deps(rdv) =>
                {
                    Classified::FastGet { client, key }
                }
                request => Classified::Defer { client, request },
            })
            .collect()
    };

    let mut deferred = Vec::new();
    for op in classified {
        match op {
            Classified::FastPut {
                client,
                key,
                value,
                dv,
                res,
            } => {
                let version = Version::new(key, value, shared.id.replica, res.ts, dv);
                shared
                    .store
                    .insert(version.clone())
                    .expect("PUT routed to the wrong partition");
                *res.slot.version.lock() = Some(version);
                res.slot.done.store(true, Ordering::Release);
                (shared.sink)(ServerOutput::reply(
                    client,
                    ClientReply::Put {
                        update_time: res.ts,
                    },
                ));
            }
            Classified::FastGet { client, key } => shared.serve_lane_get(client, key),
            Classified::Defer { client, request } => deferred.push((client, request)),
        }
    }

    if !deferred.is_empty() {
        // All of this lane's own reservations are completed above, so the drain inside
        // with_engine cannot wait on ourselves.
        shared.with_engine(|engine, outputs| {
            for (client, request) in deferred {
                outputs.extend(engine.handle_client_request(client, request));
            }
        });
    }
}

struct Lane {
    tx: SyncSender<LaneMsg>,
    handle: Option<JoinHandle<()>>,
}

/// A protocol server executed by worker-lane threads over a spine-locked
/// [`ProtocolEngine`]; see the crate docs for the concurrency story.
///
/// Replies and server-to-server messages flow through the [`OutputSink`] passed to
/// [`ParallelServer::start`]; [`ParallelServer::submit_client`] routes client operations
/// to lanes, while server messages and ticks are handled synchronously on the calling
/// thread. [`ServerIntrospect`] is implemented with full-drain semantics, so probes
/// observe a consistent engine.
pub struct ParallelServer<C> {
    shared: Arc<Shared<C>>,
    lanes: Vec<Lane>,
}

impl<C: Clock + 'static> ParallelServer<C> {
    /// Starts a server for `id` running `protocol` with `config.worker_lanes` lanes.
    pub fn start(
        id: ServerId,
        config: Config,
        protocol: ExecProtocol,
        clock: C,
        sink: OutputSink,
    ) -> Self {
        let num_lanes = config.worker_lanes.max(1);
        let now = clock.now();
        let policy = protocol.policy::<C>(&config, now);
        let engine = ProtocolEngine::new(id, config.clone(), clock, policy);
        let shared = Arc::new(Shared {
            id,
            num_replicas: config.num_replicas,
            num_shards: config.storage_shards,
            put_waits_for_dependencies: config.put_waits_for_dependencies,
            profile: protocol.fast_path(),
            store: engine.core().store.clone(),
            published: RwLock::new(engine.core().vv.clone()),
            spine: Mutex::new(Spine {
                engine,
                pipe: VecDeque::new(),
                floor: Timestamp::ZERO,
            }),
            lane_gets: AtomicU64::new(0),
            sink,
        });
        let lanes = (0..num_lanes)
            .map(|i| {
                let (tx, rx) = bounded(MAILBOX);
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("pocc-lane-{}-{}-{i}", id.replica.0, id.partition.0))
                    .spawn(move || lane_loop(shared, rx))
                    .expect("spawn lane thread");
                Lane {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ParallelServer { shared, lanes }
    }

    /// The identity of this server.
    pub fn server_id(&self) -> ServerId {
        self.shared.id
    }

    /// Routes a client operation to its key's lane. Blocks when the lane's mailbox is
    /// full (backpressure).
    pub fn submit_client(&self, client: ClientId, request: ClientRequest) {
        let key = match &request {
            ClientRequest::Get { key, .. } | ClientRequest::Put { key, .. } => *key,
            // RO-TX is deferred to the spine wherever it lands; route by first key so
            // repeated transactions spread across lanes.
            ClientRequest::RoTx { keys, .. } => keys.first().copied().unwrap_or(Key(0)),
        };
        let lane = shard_for_key(key, self.shared.num_shards) % self.lanes.len();
        self.lanes[lane]
            .tx
            .send(LaneMsg::Op(client, request))
            .expect("lane thread alive");
    }

    /// Handles a message from another server on the spine (pipeline drained first).
    pub fn handle_server_message(&self, from: ServerId, message: ServerMessage) {
        self.shared.with_engine(|engine, outputs| {
            outputs.extend(engine.handle_server_message(from, message));
        });
    }

    /// Runs one engine tick (batcher flush, heartbeats, policy periodic work).
    pub fn tick(&self) {
        self.shared.with_engine(|engine, outputs| {
            outputs.extend(engine.tick());
        });
    }

    /// Stops every lane and joins the threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        for lane in &self.lanes {
            // A dead lane has already hung up; ignore the send error.
            let _ = lane.tx.send(LaneMsg::Shutdown);
        }
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl<C> Drop for ParallelServer<C> {
    fn drop(&mut self) {
        for lane in &self.lanes {
            let _ = lane.tx.send(LaneMsg::Shutdown);
        }
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl<C: Clock + 'static> ServerIntrospect for ParallelServer<C> {
    fn metrics(&self) -> MetricsSnapshot {
        let mut m = self
            .shared
            .with_engine(|engine, _| ServerIntrospect::metrics(engine));
        m.gets_served += self.shared.lane_gets.load(Ordering::Relaxed);
        m
    }

    fn digest(&self) -> Vec<(Key, Timestamp, ReplicaId)> {
        self.shared
            .with_engine(|engine, _| ServerIntrospect::digest(engine))
    }

    fn store_stats(&self) -> StoreStats {
        self.shared
            .with_engine(|engine, _| ServerIntrospect::store_stats(engine))
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shared
            .with_engine(|engine, _| ServerIntrospect::shard_stats(engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use pocc_clock::{MonotonicClock, SystemClock};
    use pocc_types::{PartitionId, Value};

    fn single_server_config(lanes: usize) -> Config {
        Config::builder()
            .num_replicas(1)
            .num_partitions(1)
            .worker_lanes(lanes)
            .build()
            .expect("valid config")
    }

    fn start(
        protocol: ExecProtocol,
        lanes: usize,
    ) -> (
        ParallelServer<MonotonicClock<SystemClock>>,
        Receiver<ServerOutput>,
    ) {
        let (tx, rx) = unbounded();
        let sink: OutputSink = Arc::new(move |out| {
            let _ = tx.send(out);
        });
        let server = ParallelServer::start(
            ServerId::new(ReplicaId(0), PartitionId(0)),
            single_server_config(lanes),
            protocol,
            MonotonicClock::new(SystemClock::new()),
            sink,
        );
        (server, rx)
    }

    fn recv_reply(rx: &Receiver<ServerOutput>) -> ClientReply {
        match rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("an output before the timeout")
        {
            ServerOutput::Reply { reply, .. } => reply,
            other => panic!("expected a reply, got {other:?}"),
        }
    }

    #[test]
    fn pocc_put_then_get_round_trip() {
        let (server, rx) = start(ExecProtocol::Pocc, 2);
        let client = ClientId(1);
        let dv = DependencyVector::zero(1);
        server.submit_client(
            client,
            ClientRequest::Put {
                key: Key(7),
                value: Value::from("v"),
                dv: dv.clone(),
            },
        );
        let update_time = match recv_reply(&rx) {
            ClientReply::Put { update_time } => update_time,
            other => panic!("expected a PUT reply, got {other:?}"),
        };
        assert!(update_time > Timestamp::ZERO);

        server.submit_client(
            client,
            ClientRequest::Get {
                key: Key(7),
                rdv: dv,
            },
        );
        match recv_reply(&rx) {
            ClientReply::Get(resp) => {
                assert_eq!(resp.value, Some(Value::from("v")));
                assert_eq!(resp.update_time, update_time);
            }
            other => panic!("expected a GET reply, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_puts_all_publish_with_unique_timestamps() {
        let (server, rx) = start(ExecProtocol::Pocc, 4);
        let n = 400u64;
        for i in 0..n {
            server.submit_client(
                ClientId(i),
                ClientRequest::Put {
                    key: Key(i),
                    value: Value::from(i),
                    dv: DependencyVector::zero(1),
                },
            );
        }
        let mut times = Vec::new();
        for _ in 0..n {
            match recv_reply(&rx) {
                ClientReply::Put { update_time } => times.push(update_time),
                other => panic!("expected a PUT reply, got {other:?}"),
            }
        }
        times.sort();
        times.dedup();
        assert_eq!(times.len() as u64, n, "update times are unique");

        // Probes drain the pipeline, so every PUT is published by the time we look.
        let metrics = server.metrics();
        assert_eq!(metrics.puts_served, n);
        assert_eq!(server.digest().len() as u64, n);
        assert_eq!(server.store_stats().versions as u64, n);
    }

    #[test]
    fn every_protocol_serves_the_client_api() {
        for protocol in [
            ExecProtocol::Pocc,
            ExecProtocol::Cure,
            ExecProtocol::HaPocc,
            ExecProtocol::Adaptive,
        ] {
            let (server, rx) = start(protocol, 2);
            let client = ClientId(9);
            let dv = DependencyVector::zero(1);
            server.submit_client(
                client,
                ClientRequest::Put {
                    key: Key(3),
                    value: Value::from("x"),
                    dv: dv.clone(),
                },
            );
            assert!(matches!(recv_reply(&rx), ClientReply::Put { .. }));
            server.submit_client(
                client,
                ClientRequest::Get {
                    key: Key(3),
                    rdv: dv.clone(),
                },
            );
            match recv_reply(&rx) {
                ClientReply::Get(resp) => assert_eq!(resp.value, Some(Value::from("x"))),
                other => panic!("{protocol:?}: expected a GET reply, got {other:?}"),
            }
            server.submit_client(
                client,
                ClientRequest::RoTx {
                    keys: vec![Key(3)],
                    rdv: dv,
                },
            );
            match recv_reply(&rx) {
                ClientReply::RoTx { items } => assert_eq!(items.len(), 1),
                other => panic!("{protocol:?}: expected an RO-TX reply, got {other:?}"),
            }
            let m = server.metrics();
            assert_eq!(m.puts_served, 1, "{protocol:?}");
            assert_eq!(m.gets_served, 1, "{protocol:?}");
            assert_eq!(m.rotx_served, 1, "{protocol:?}");
        }
    }

    #[test]
    fn ticks_interleaved_with_writes_keep_the_engine_consistent() {
        let (server, rx) = start(ExecProtocol::Pocc, 2);
        for i in 0..100u64 {
            server.submit_client(
                ClientId(i),
                ClientRequest::Put {
                    key: Key(i),
                    value: Value::from(i),
                    dv: DependencyVector::zero(1),
                },
            );
            if i % 10 == 0 {
                server.tick();
            }
        }
        for _ in 0..100 {
            let _ = recv_reply(&rx);
        }
        assert_eq!(server.metrics().puts_served, 100);
        assert_eq!(server.store_stats().versions, 100);
    }
}
