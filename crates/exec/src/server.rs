//! The threaded server: worker lanes over a spine-locked protocol engine.

use crate::snapshot::PublishedVector;
use crate::{ExecProtocol, FastPathProfile};
use crossbeam::channel::{bounded, Receiver, SyncSender};
use parking_lot::Mutex;
use pocc_clock::Clock;
use pocc_engine::{ProtocolEngine, VisibilityPolicy};
use pocc_proto::{
    ClientReply, ClientRequest, GetResponse, MetricsSnapshot, ProtocolServer, ServerIntrospect,
    ServerMessage, ServerOutput, TxItem,
};
use pocc_storage::{partition_for_key, shard_for_key, ShardStats, ShardedStore, StoreStats};
use pocc_types::{
    ClientId, Config, DependencyVector, Key, ReplicaId, ServerId, Timestamp, Version,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Where a [`ParallelServer`] delivers its replies and server-to-server messages.
///
/// The sink is called from lane threads and from whichever thread drives
/// [`ParallelServer::handle_server_message`]/[`ParallelServer::tick`], sometimes while
/// internal locks are held — it must not block (enqueueing on an unbounded channel, as
/// the cluster runtime does, is the intended shape).
pub type OutputSink = Arc<dyn Fn(ServerOutput) + Send + Sync>;

/// One engine driving all four protocols through a boxed policy.
type Engine<C> = ProtocolEngine<C, Box<dyn VisibilityPolicy<C>>>;

/// Mailbox capacity per lane; a full mailbox blocks the submitter (backpressure).
const MAILBOX: usize = 1024;
/// Maximum operations a lane coalesces into one batch (amortises spine locking).
const BATCH: usize = 64;
/// Drain iterations spent yielding before falling back to short parks: lanes complete
/// their slots within a few instructions of going off-lock, so a yield almost always
/// suffices; the park only triggers when the owning lane thread was descheduled.
const DRAIN_SPIN_LIMIT: u64 = 64;
/// How long a drain iteration parks once the spin budget is exhausted.
const DRAIN_PARK: std::time::Duration = std::time::Duration::from_micros(50);

/// The server has shut down its worker lanes and can no longer accept operations.
/// Returned by [`ParallelServer::submit_client`] when a submission races shutdown
/// (a *full* mailbox is not an error — it blocks the submitter as backpressure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerClosed;

impl std::fmt::Display for ServerClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the server's worker lanes have shut down")
    }
}

impl std::error::Error for ServerClosed {}

enum LaneMsg {
    Op(ClientId, ClientRequest),
    Remote(Arc<RemoteSlot>),
    Shutdown,
}

/// A timestamp reserved for an in-flight pipelined PUT. The lane completes the slot
/// (version installed in the store) without any lock; the spine publishes completed
/// reservations in FIFO — i.e. timestamp — order.
struct Slot {
    done: AtomicBool,
    version: Mutex<Option<Version>>,
}

struct Reservation {
    ts: Timestamp,
    slot: Arc<Slot>,
}

/// One replicated remote version on its way into the store. The payload travels to the
/// key's lane, which installs it off-spine; `claimed` lets the spine-side drain install
/// a slot itself instead of waiting on a lane that may be blocked on the spine mutex.
struct RemoteSlot {
    claimed: AtomicBool,
    done: AtomicBool,
    version: Mutex<Option<Version>>,
}

impl RemoteSlot {
    fn new(version: Version) -> Self {
        RemoteSlot {
            claimed: AtomicBool::new(false),
            done: AtomicBool::new(false),
            version: Mutex::new(Some(version)),
        }
    }

    /// Installs the version into `store` exactly once, no matter how many threads race
    /// here (the owning lane and any number of drains may all try).
    fn install(&self, store: &ShardedStore) {
        if self.claimed.swap(true, Ordering::AcqRel) {
            return;
        }
        let version = self
            .version
            .lock()
            .take()
            .expect("an unclaimed remote slot holds its version");
        store
            .insert(version)
            .expect("replicated update routed to the wrong partition");
        self.done.store(true, Ordering::Release);
    }
}

/// A queued remote version: what the sweep needs to absorb the advance once the slot's
/// payload is installed.
struct RemoteRes {
    from: ServerId,
    key: Key,
    ts: Timestamp,
    slot: Arc<RemoteSlot>,
}

/// The spine: the full protocol engine plus the write pipeline, behind one mutex.
struct Spine<C> {
    engine: Engine<C>,
    /// In-flight PUT reservations, in reservation (= timestamp) order.
    pipe: VecDeque<Reservation>,
    /// Highest timestamp ever reserved; the floor for the next reservation, so lane
    /// timestamps stay strictly increasing even across pipeline drains.
    floor: Timestamp,
}

/// Counters of operations lanes served without the spine, folded into
/// [`MetricsSnapshot`] by probes (the engine only sees spine-dispatched operations).
#[derive(Default)]
struct LaneCounters {
    gets: AtomicU64,
    rotx: AtomicU64,
    tx_items: AtomicU64,
    old_tx_items: AtomicU64,
    fast_path_hits: AtomicU64,
    fast_path_misses: AtomicU64,
    spine_acquisitions: AtomicU64,
    drain_spins: AtomicU64,
}

struct Shared<C> {
    id: ServerId,
    num_replicas: usize,
    num_partitions: usize,
    num_shards: usize,
    put_waits_for_dependencies: bool,
    profile: FastPathProfile,
    /// Handle to the same sharded store the engine owns (lanes insert, readers read).
    store: ShardedStore,
    spine: Mutex<Spine<C>>,
    /// Queued remote versions, one FIFO per origin replica (replication channels are
    /// FIFO and siblings send in timestamp order, so each queue is timestamp-ordered).
    /// Guarded by its own mutex so enqueueing never waits on a spine drain.
    /// Lock order: spine before remote, never the reverse.
    remote: Mutex<Vec<VecDeque<RemoteRes>>>,
    /// Epoch snapshot of the engine's version vector as per-replica atomics, advanced
    /// after every pipeline sweep. Snapshot-covered GET/RO-TX batches are served
    /// against it without taking any lock.
    published: PublishedVector,
    lane: LaneCounters,
    sink: OutputSink,
}

impl<C: Clock> Shared<C> {
    fn lock_spine(&self) -> parking_lot::MutexGuard<'_, Spine<C>> {
        let spine = self.spine.lock();
        self.lane.spine_acquisitions.fetch_add(1, Ordering::Relaxed);
        spine
    }

    fn try_lock_spine(&self) -> Option<parking_lot::MutexGuard<'_, Spine<C>>> {
        let spine = self.spine.try_lock()?;
        self.lane.spine_acquisitions.fetch_add(1, Ordering::Relaxed);
        Some(spine)
    }

    /// Publishes the contiguous prefix of completed local reservations and installed
    /// remote versions into the engine: version-vector advances, PUT accounting and
    /// replication fan-out for local writes, replication accounting and the policy's
    /// `on_replicate` hook for remote ones — all in per-origin timestamp order. Must be
    /// called with the spine lock held (hence `&mut Spine`).
    fn sweep(&self, spine: &mut Spine<C>) {
        let mut outputs = Vec::new();
        let mut published = false;
        while let Some(front) = spine.pipe.front() {
            if !front.slot.done.load(Ordering::Acquire) {
                break;
            }
            let res = spine.pipe.pop_front().expect("front exists");
            let version = res
                .slot
                .version
                .lock()
                .take()
                .expect("a completed reservation holds its version");
            let core = spine.engine.core_mut();
            core.vv.advance(self.id.replica, res.ts);
            core.metrics.puts_served += 1;
            for i in 0..core.siblings().len() {
                let sibling = core.siblings()[i];
                let msg = ServerMessage::Replicate {
                    version: version.clone(),
                };
                core.send_via_batcher(sibling, msg, &mut outputs);
            }
            published = true;
        }
        {
            let mut remote = self.remote.lock();
            for queue in remote.iter_mut() {
                while queue
                    .front()
                    .is_some_and(|r| r.slot.done.load(Ordering::Acquire))
                {
                    let res = queue.pop_front().expect("front exists");
                    spine
                        .engine
                        .absorb_remote_version(res.from, res.key, res.ts, &mut outputs);
                    published = true;
                }
            }
        }
        if published {
            // Local and/or origin VV entries advanced: parked operations may now be
            // servable, and lane readers get a fresher epoch snapshot.
            spine.engine.core_mut().unpark(&mut outputs);
            self.published.refresh_from(&spine.engine.core().vv);
        }
        self.ship(outputs);
    }

    /// Waits until every in-flight reservation and queued remote version has been
    /// published. Queued remote slots are installed *by this thread* (see
    /// [`RemoteSlot::install`]): their owning lane may be blocked on the spine mutex we
    /// hold, so waiting for it would deadlock. Local reservations are only ever
    /// completed off-lock, immediately after classification, so a short spin covers
    /// them; the park only triggers when the owning lane was descheduled mid-insert.
    fn drain(&self, spine: &mut Spine<C>) {
        let mut spins = 0u64;
        loop {
            self.install_queued_remote();
            self.sweep(spine);
            if spine.pipe.is_empty() && self.remote.lock().iter().all(|q| q.is_empty()) {
                break;
            }
            spins += 1;
            if spins <= DRAIN_SPIN_LIMIT {
                std::thread::yield_now();
            } else {
                std::thread::sleep(DRAIN_PARK);
            }
        }
        if spins > 0 {
            self.lane.drain_spins.fetch_add(spins, Ordering::Relaxed);
        }
    }

    /// Claims and installs every queued remote version that its lane has not picked up
    /// yet (the lane finds the slot claimed and skips it).
    fn install_queued_remote(&self) {
        let remote = self.remote.lock();
        for queue in remote.iter() {
            for res in queue.iter() {
                res.slot.install(&self.store);
            }
        }
    }

    /// Runs `f` against the engine with the pipeline fully drained — the only way any
    /// code outside the sweep may touch the engine. Outputs are shipped while the spine
    /// is still held, so replication order on the FIFO channels matches engine order.
    fn with_engine<R>(&self, f: impl FnOnce(&mut Engine<C>, &mut Vec<ServerOutput>) -> R) -> R {
        let mut spine = self.lock_spine();
        self.drain(&mut spine);
        let mut outputs = Vec::new();
        let r = f(&mut spine.engine, &mut outputs);
        // Heartbeats and handled messages may have advanced the local VV entry past the
        // reservation floor; keep future reservations above both.
        let local_vv = spine.engine.core().vv.get(self.id.replica);
        spine.floor = spine.floor.max(local_vv);
        self.published.refresh_from(&spine.engine.core().vv);
        self.ship(outputs);
        r
    }

    fn ship(&self, outputs: Vec<ServerOutput>) {
        for out in outputs {
            (self.sink)(out);
        }
    }

    /// Reserves the next PUT timestamp under the spine lock, mirroring `serve_put`'s
    /// floor rule: strictly above the client's dependencies, the local VV entry and
    /// every previous reservation.
    fn reserve(&self, spine: &mut Spine<C>, dv: &DependencyVector) -> Reservation {
        let core = spine.engine.core_mut();
        let now = core.clock.now();
        let floor = dv
            .max_entry()
            .max(core.vv.get(self.id.replica))
            .max(spine.floor);
        let ts = if now > floor {
            now
        } else {
            core.metrics.clock_wait_time +=
                floor.saturating_since(now) + std::time::Duration::from_micros(1);
            floor.tick()
        };
        spine.floor = ts;
        let slot = Arc::new(Slot {
            done: AtomicBool::new(false),
            version: Mutex::new(None),
        });
        spine.pipe.push_back(Reservation {
            ts,
            slot: Arc::clone(&slot),
        });
        Reservation { ts, slot }
    }

    /// Builds a GET payload the way the engine's `response_for` does.
    fn response_for(&self, version: Option<Version>) -> GetResponse {
        match version {
            Some(v) => GetResponse {
                value: Some(v.value),
                update_time: v.update_time,
                deps: v.deps,
                source_replica: v.source_replica,
            },
            None => GetResponse {
                value: None,
                update_time: Timestamp::ZERO,
                deps: DependencyVector::zero(self.num_replicas),
                source_replica: self.id.replica,
            },
        }
    }

    /// Serves a dependency-covered GET straight from the store (no spine).
    fn serve_lane_get(&self, client: ClientId, key: Key) {
        let response = self.response_for(self.store.latest(key));
        self.lane.gets.fetch_add(1, Ordering::Relaxed);
        (self.sink)(ServerOutput::reply(client, ClientReply::Get(response)));
    }

    /// Reads every key of an entirely-local RO-TX under the published snapshot `tv`
    /// (the caller has checked `tv` covers the client's dependencies, so it is exactly
    /// the `VV ∨ RDV` snapshot POCC would pick — just from a possibly slightly older
    /// epoch). Returns `None` when GC may have removed a version the snapshot needs;
    /// the caller then defers to the spine, which owns the abort bookkeeping.
    fn lane_rotx_items(&self, keys: &[Key], tv: &DependencyVector) -> Option<Vec<TxItem>> {
        let mut items = Vec::with_capacity(keys.len());
        let mut old = 0u64;
        for &key in keys {
            let outcome = self.store.latest_in_snapshot(key, tv);
            if outcome.version.is_none() && self.store.snapshot_may_predate_gc(key, tv) {
                return None;
            }
            if outcome.is_old() {
                old += 1;
            }
            items.push(TxItem {
                key,
                response: self.response_for(outcome.version),
            });
        }
        self.lane
            .tx_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        self.lane.old_tx_items.fetch_add(old, Ordering::Relaxed);
        Some(items)
    }
}

/// What a lane decided to do with one operation of a batch, holding the spine lock.
enum Classified {
    FastPut {
        client: ClientId,
        key: Key,
        value: pocc_types::Value,
        dv: DependencyVector,
        res: Reservation,
    },
    FastGet {
        client: ClientId,
        key: Key,
    },
    Defer {
        client: ClientId,
        request: ClientRequest,
    },
}

fn lane_loop<C: Clock + 'static>(shared: Arc<Shared<C>>, rx: Receiver<LaneMsg>) {
    loop {
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => return,
        };
        let mut batch = Vec::with_capacity(BATCH);
        let mut remotes = Vec::new();
        let mut shutdown = false;
        match first {
            LaneMsg::Op(client, request) => batch.push((client, request)),
            LaneMsg::Remote(slot) => remotes.push(slot),
            LaneMsg::Shutdown => return,
        }
        while batch.len() + remotes.len() < BATCH {
            match rx.try_recv() {
                Ok(LaneMsg::Op(client, request)) => batch.push((client, request)),
                Ok(LaneMsg::Remote(slot)) => remotes.push(slot),
                Ok(LaneMsg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Err(_) => break,
            }
        }
        // Remote installs first: they are pure store inserts and unblock the spine's
        // watermark (a drain waiting on these queues claims unstarted slots itself).
        if !remotes.is_empty() {
            for slot in &remotes {
                slot.install(&shared.store);
            }
            // Opportunistically absorb the advances; if the spine is busy, whoever
            // holds it sweeps on its way out, and ticks sweep periodically.
            if let Some(mut spine) = shared.try_lock_spine() {
                shared.sweep(&mut spine);
            }
        }
        if !batch.is_empty() {
            process_batch(&shared, batch);
        }
        if shutdown {
            return;
        }
    }
}

/// Serves a batch consisting purely of snapshot-covered GETs and entirely-local,
/// snapshot-covered RO-TXs straight from the store, without any lock. Returns `false`
/// (serving nothing) if any operation of the batch does not qualify.
fn try_serve_from_snapshot<C: Clock + 'static>(
    shared: &Shared<C>,
    batch: &[(ClientId, ClientRequest)],
) -> bool {
    let snapshot = shared.published.load();
    let covered = batch.iter().all(|(_, request)| match request {
        ClientRequest::Get { rdv, .. } => {
            snapshot.covers_dependencies_except_local(rdv, shared.id.replica)
        }
        ClientRequest::RoTx { keys, rdv } => {
            snapshot.covers(rdv)
                && keys
                    .iter()
                    .all(|&k| partition_for_key(k, shared.num_partitions) == shared.id.partition)
        }
        ClientRequest::Put { .. } => false,
    });
    if !covered {
        return false;
    }
    // Compute every reply before shipping any: an RO-TX can still lose its snapshot to
    // garbage collection, in which case the whole batch falls back to the spine path
    // (re-serving the GETs there is harmless — nothing has been shipped yet).
    let tv = snapshot.snapshot_with(&DependencyVector::zero(shared.num_replicas));
    let mut replies = Vec::with_capacity(batch.len());
    let mut rotx = 0u64;
    for (client, request) in batch {
        match request {
            ClientRequest::Get { key, .. } => replies.push((
                *client,
                ClientReply::Get(shared.response_for(shared.store.latest(*key))),
            )),
            ClientRequest::RoTx { keys, .. } => match shared.lane_rotx_items(keys, &tv) {
                Some(items) => {
                    rotx += 1;
                    replies.push((*client, ClientReply::RoTx { items }));
                }
                None => return false,
            },
            ClientRequest::Put { .. } => unreachable!("PUTs are never snapshot-covered"),
        }
    }
    // Count before shipping: a client that has its reply in hand may probe metrics
    // immediately, and must already see this batch accounted for.
    let gets = replies.len() as u64 - rotx;
    shared.lane.gets.fetch_add(gets, Ordering::Relaxed);
    shared.lane.rotx.fetch_add(rotx, Ordering::Relaxed);
    shared
        .lane
        .fast_path_hits
        .fetch_add(replies.len() as u64, Ordering::Relaxed);
    for (client, reply) in replies {
        (shared.sink)(ServerOutput::reply(client, reply));
    }
    true
}

fn process_batch<C: Clock + 'static>(shared: &Shared<C>, batch: Vec<(ClientId, ClientRequest)>) {
    // Reader fast path: a batch of GETs and local RO-TXs all covered by the published
    // epoch snapshot is served entirely from the store, without any lock.
    if shared.profile.gets && try_serve_from_snapshot(shared, &batch) {
        return;
    }

    // Classify under the spine lock (exact, live VV), then execute off-lock.
    let classified: Vec<Classified> = {
        let mut spine = shared.lock_spine();
        shared.sweep(&mut spine);
        batch
            .into_iter()
            .map(|(client, request)| match request {
                ClientRequest::Put { key, value, dv }
                    if shared.profile.puts
                        && (!shared.profile.puts_check_deps
                            || !shared.put_waits_for_dependencies
                            || spine.engine.core().covers_remote_deps(&dv)) =>
                {
                    let res = shared.reserve(&mut spine, &dv);
                    Classified::FastPut {
                        client,
                        key,
                        value,
                        dv,
                        res,
                    }
                }
                ClientRequest::Get { key, ref rdv }
                    if shared.profile.gets && spine.engine.core().covers_remote_deps(rdv) =>
                {
                    Classified::FastGet { client, key }
                }
                request => Classified::Defer { client, request },
            })
            .collect()
    };

    // As above: account for the whole batch before any reply ships.
    let hits = classified
        .iter()
        .filter(|op| !matches!(op, Classified::Defer { .. }))
        .count() as u64;
    if hits > 0 {
        shared
            .lane
            .fast_path_hits
            .fetch_add(hits, Ordering::Relaxed);
    }
    let mut deferred = Vec::new();
    for op in classified {
        match op {
            Classified::FastPut {
                client,
                key,
                value,
                dv,
                res,
            } => {
                let version = Version::new(key, value, shared.id.replica, res.ts, dv);
                shared
                    .store
                    .insert(version.clone())
                    .expect("PUT routed to the wrong partition");
                *res.slot.version.lock() = Some(version);
                res.slot.done.store(true, Ordering::Release);
                (shared.sink)(ServerOutput::reply(
                    client,
                    ClientReply::Put {
                        update_time: res.ts,
                    },
                ));
            }
            Classified::FastGet { client, key } => shared.serve_lane_get(client, key),
            Classified::Defer { client, request } => deferred.push((client, request)),
        }
    }

    if !deferred.is_empty() {
        shared
            .lane
            .fast_path_misses
            .fetch_add(deferred.len() as u64, Ordering::Relaxed);
        // All of this lane's own reservations are completed above, so the drain inside
        // with_engine cannot wait on ourselves.
        shared.with_engine(|engine, outputs| {
            for (client, request) in deferred {
                outputs.extend(engine.handle_client_request(client, request));
            }
        });
    }
}

struct Lane {
    tx: SyncSender<LaneMsg>,
    handle: Option<JoinHandle<()>>,
}

/// A protocol server executed by worker-lane threads over a spine-locked
/// [`ProtocolEngine`]; see the crate docs for the concurrency story.
///
/// Replies and server-to-server messages flow through the [`OutputSink`] passed to
/// [`ParallelServer::start`]; [`ParallelServer::submit_client`] routes client operations
/// to lanes, and [`ParallelServer::handle_server_message`] routes replicated remote
/// versions to lanes as well — only genuinely-deferred messages (heartbeats, slices,
/// stabilization, GC) and ticks run on the calling thread. [`ServerIntrospect`] is
/// implemented with full-drain semantics, so probes observe a consistent engine.
pub struct ParallelServer<C> {
    shared: Arc<Shared<C>>,
    lanes: Vec<Lane>,
}

impl<C: Clock + 'static> ParallelServer<C> {
    /// Starts a server for `id` running `protocol` with `config.worker_lanes` lanes.
    pub fn start(
        id: ServerId,
        config: Config,
        protocol: ExecProtocol,
        clock: C,
        sink: OutputSink,
    ) -> Self {
        let num_lanes = config.worker_lanes.max(1);
        let now = clock.now();
        let policy = protocol.policy::<C>(&config, now);
        let engine = ProtocolEngine::new(id, config.clone(), clock, policy);
        let shared = Arc::new(Shared {
            id,
            num_replicas: config.num_replicas,
            num_partitions: config.num_partitions,
            num_shards: config.storage_shards,
            put_waits_for_dependencies: config.put_waits_for_dependencies,
            profile: protocol.fast_path(),
            store: engine.core().store.clone(),
            published: PublishedVector::new(&engine.core().vv),
            remote: Mutex::new((0..config.num_replicas).map(|_| VecDeque::new()).collect()),
            spine: Mutex::new(Spine {
                engine,
                pipe: VecDeque::new(),
                floor: Timestamp::ZERO,
            }),
            lane: LaneCounters::default(),
            sink,
        });
        let lanes = (0..num_lanes)
            .map(|i| {
                let (tx, rx) = bounded(MAILBOX);
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("pocc-lane-{}-{}-{i}", id.replica.0, id.partition.0))
                    .spawn(move || lane_loop(shared, rx))
                    .expect("spawn lane thread");
                Lane {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ParallelServer { shared, lanes }
    }

    /// The identity of this server.
    pub fn server_id(&self) -> ServerId {
        self.shared.id
    }

    /// Routes a client operation to its key's lane. Blocks when the lane's mailbox is
    /// full (backpressure); returns [`ServerClosed`] when the submission races
    /// shutdown and the lane is gone.
    pub fn submit_client(
        &self,
        client: ClientId,
        request: ClientRequest,
    ) -> Result<(), ServerClosed> {
        let key = match &request {
            ClientRequest::Get { key, .. } | ClientRequest::Put { key, .. } => *key,
            // RO-TX is served (or deferred) wherever it lands; route by first key so
            // repeated transactions spread across lanes.
            ClientRequest::RoTx { keys, .. } => keys.first().copied().unwrap_or(Key(0)),
        };
        self.lane_for(key)
            .send(LaneMsg::Op(client, request))
            .map_err(|_| ServerClosed)
    }

    fn lane_for(&self, key: Key) -> &SyncSender<LaneMsg> {
        &self.lanes[shard_for_key(key, self.shared.num_shards) % self.lanes.len()].tx
    }

    /// Handles a message from another server. Replicated versions are queued on the
    /// per-origin pipeline and routed to their key's lane, which installs them into the
    /// store off-spine; everything else is handled on the spine (pipeline drained
    /// first, so per-origin arrival order is preserved).
    pub fn handle_server_message(&self, from: ServerId, message: ServerMessage) {
        match message {
            ServerMessage::Replicate { version } => self.submit_remote(from, version),
            ServerMessage::Batch { messages } => {
                for message in messages {
                    self.handle_server_message(from, message);
                }
            }
            message => self.shared.with_engine(|engine, outputs| {
                outputs.extend(engine.handle_server_message(from, message));
            }),
        }
    }

    /// Queues one replicated remote version and hands its payload to the key's lane.
    fn submit_remote(&self, from: ServerId, version: Version) {
        let key = version.key;
        let ts = version.update_time;
        let slot = Arc::new(RemoteSlot::new(version));
        {
            let mut remote = self.shared.remote.lock();
            remote[from.replica.0 as usize].push_back(RemoteRes {
                from,
                key,
                ts,
                slot: Arc::clone(&slot),
            });
        }
        if self.lane_for(key).send(LaneMsg::Remote(slot)).is_err() {
            // Shutdown raced the message; nothing may drive the spine again, so
            // install inline to keep the queued reservation completable.
            self.shared.install_queued_remote();
        }
    }

    /// Runs one engine tick (batcher flush, heartbeats, policy periodic work).
    pub fn tick(&self) {
        self.shared.with_engine(|engine, outputs| {
            outputs.extend(engine.tick());
        });
    }

    /// Stops every lane and joins the threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        for lane in &self.lanes {
            // A dead lane has already hung up; ignore the send error.
            let _ = lane.tx.send(LaneMsg::Shutdown);
        }
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl<C> Drop for ParallelServer<C> {
    fn drop(&mut self) {
        for lane in &self.lanes {
            let _ = lane.tx.send(LaneMsg::Shutdown);
        }
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl<C: Clock + 'static> ServerIntrospect for ParallelServer<C> {
    fn metrics(&self) -> MetricsSnapshot {
        let mut m = self
            .shared
            .with_engine(|engine, _| ServerIntrospect::metrics(engine));
        let lane = &self.shared.lane;
        m.gets_served += lane.gets.load(Ordering::Relaxed);
        m.rotx_served += lane.rotx.load(Ordering::Relaxed);
        m.tx_items_returned += lane.tx_items.load(Ordering::Relaxed);
        // Lane RO-TXs run only under the POCC profile, whose slice-unmerged mode
        // classifies every old item as unmerged (`SliceUnmergedMode::OldIsUnmerged`).
        m.old_tx_items += lane.old_tx_items.load(Ordering::Relaxed);
        m.unmerged_tx_items += lane.old_tx_items.load(Ordering::Relaxed);
        m.lane_fast_path_hits = lane.fast_path_hits.load(Ordering::Relaxed);
        m.lane_fast_path_misses = lane.fast_path_misses.load(Ordering::Relaxed);
        m.spine_acquisitions = lane.spine_acquisitions.load(Ordering::Relaxed);
        m.drain_spins = lane.drain_spins.load(Ordering::Relaxed);
        m
    }

    fn digest(&self) -> Vec<(Key, Timestamp, ReplicaId)> {
        self.shared
            .with_engine(|engine, _| ServerIntrospect::digest(engine))
    }

    fn store_stats(&self) -> StoreStats {
        self.shared
            .with_engine(|engine, _| ServerIntrospect::store_stats(engine))
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shared
            .with_engine(|engine, _| ServerIntrospect::shard_stats(engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use pocc_clock::{MonotonicClock, SystemClock};
    use pocc_types::{PartitionId, Value};

    fn single_server_config(lanes: usize) -> Config {
        Config::builder()
            .num_replicas(1)
            .num_partitions(1)
            .worker_lanes(lanes)
            .build()
            .expect("valid config")
    }

    fn start(
        protocol: ExecProtocol,
        lanes: usize,
    ) -> (
        ParallelServer<MonotonicClock<SystemClock>>,
        Receiver<ServerOutput>,
    ) {
        start_with_config(protocol, single_server_config(lanes))
    }

    fn start_with_config(
        protocol: ExecProtocol,
        config: Config,
    ) -> (
        ParallelServer<MonotonicClock<SystemClock>>,
        Receiver<ServerOutput>,
    ) {
        let (tx, rx) = unbounded();
        let sink: OutputSink = Arc::new(move |out| {
            let _ = tx.send(out);
        });
        let server = ParallelServer::start(
            ServerId::new(ReplicaId(0), PartitionId(0)),
            config,
            protocol,
            MonotonicClock::new(SystemClock::new()),
            sink,
        );
        (server, rx)
    }

    fn recv_reply(rx: &Receiver<ServerOutput>) -> ClientReply {
        loop {
            match rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("an output before the timeout")
            {
                ServerOutput::Reply { reply, .. } => return reply,
                // Multi-replica servers also emit replication traffic; skip it.
                ServerOutput::Send { .. } => continue,
            }
        }
    }

    #[test]
    fn pocc_put_then_get_round_trip() {
        let (server, rx) = start(ExecProtocol::Pocc, 2);
        let client = ClientId(1);
        let dv = DependencyVector::zero(1);
        server
            .submit_client(
                client,
                ClientRequest::Put {
                    key: Key(7),
                    value: Value::from("v"),
                    dv: dv.clone(),
                },
            )
            .expect("server is running");
        let update_time = match recv_reply(&rx) {
            ClientReply::Put { update_time } => update_time,
            other => panic!("expected a PUT reply, got {other:?}"),
        };
        assert!(update_time > Timestamp::ZERO);

        server
            .submit_client(
                client,
                ClientRequest::Get {
                    key: Key(7),
                    rdv: dv,
                },
            )
            .expect("server is running");
        match recv_reply(&rx) {
            ClientReply::Get(resp) => {
                assert_eq!(resp.value, Some(Value::from("v")));
                assert_eq!(resp.update_time, update_time);
            }
            other => panic!("expected a GET reply, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_puts_all_publish_with_unique_timestamps() {
        let (server, rx) = start(ExecProtocol::Pocc, 4);
        let n = 400u64;
        for i in 0..n {
            server
                .submit_client(
                    ClientId(i),
                    ClientRequest::Put {
                        key: Key(i),
                        value: Value::from(i),
                        dv: DependencyVector::zero(1),
                    },
                )
                .expect("server is running");
        }
        let mut times = Vec::new();
        for _ in 0..n {
            match recv_reply(&rx) {
                ClientReply::Put { update_time } => times.push(update_time),
                other => panic!("expected a PUT reply, got {other:?}"),
            }
        }
        times.sort();
        times.dedup();
        assert_eq!(times.len() as u64, n, "update times are unique");

        // Probes drain the pipeline, so every PUT is published by the time we look.
        let metrics = server.metrics();
        assert_eq!(metrics.puts_served, n);
        assert_eq!(server.digest().len() as u64, n);
        assert_eq!(server.store_stats().versions as u64, n);
    }

    #[test]
    fn every_protocol_serves_the_client_api() {
        for protocol in [
            ExecProtocol::Pocc,
            ExecProtocol::Cure,
            ExecProtocol::HaPocc,
            ExecProtocol::Adaptive,
        ] {
            let (server, rx) = start(protocol, 2);
            let client = ClientId(9);
            let dv = DependencyVector::zero(1);
            server
                .submit_client(
                    client,
                    ClientRequest::Put {
                        key: Key(3),
                        value: Value::from("x"),
                        dv: dv.clone(),
                    },
                )
                .expect("server is running");
            assert!(matches!(recv_reply(&rx), ClientReply::Put { .. }));
            server
                .submit_client(
                    client,
                    ClientRequest::Get {
                        key: Key(3),
                        rdv: dv.clone(),
                    },
                )
                .expect("server is running");
            match recv_reply(&rx) {
                ClientReply::Get(resp) => assert_eq!(resp.value, Some(Value::from("x"))),
                other => panic!("{protocol:?}: expected a GET reply, got {other:?}"),
            }
            server
                .submit_client(
                    client,
                    ClientRequest::RoTx {
                        keys: vec![Key(3)],
                        rdv: dv,
                    },
                )
                .expect("server is running");
            match recv_reply(&rx) {
                ClientReply::RoTx { items } => assert_eq!(items.len(), 1),
                other => panic!("{protocol:?}: expected an RO-TX reply, got {other:?}"),
            }
            let m = server.metrics();
            assert_eq!(m.puts_served, 1, "{protocol:?}");
            assert_eq!(m.gets_served, 1, "{protocol:?}");
            assert_eq!(m.rotx_served, 1, "{protocol:?}");
            assert_eq!(
                m.lane_fast_path_hits + m.lane_fast_path_misses,
                3,
                "{protocol:?}: every operation is either a hit or a miss ({m:?})"
            );
        }
    }

    #[test]
    fn ticks_interleaved_with_writes_keep_the_engine_consistent() {
        let (server, rx) = start(ExecProtocol::Pocc, 2);
        for i in 0..100u64 {
            server
                .submit_client(
                    ClientId(i),
                    ClientRequest::Put {
                        key: Key(i),
                        value: Value::from(i),
                        dv: DependencyVector::zero(1),
                    },
                )
                .expect("server is running");
            if i % 10 == 0 {
                server.tick();
            }
        }
        for _ in 0..100 {
            let _ = recv_reply(&rx);
        }
        assert_eq!(server.metrics().puts_served, 100);
        assert_eq!(server.store_stats().versions, 100);
    }

    #[test]
    fn submit_after_shutdown_reports_server_closed_instead_of_panicking() {
        let (mut server, _rx) = start(ExecProtocol::Pocc, 2);
        server.shutdown();
        let result = server.submit_client(
            ClientId(1),
            ClientRequest::Get {
                key: Key(1),
                rdv: DependencyVector::zero(1),
            },
        );
        assert_eq!(result, Err(ServerClosed));
    }

    #[test]
    fn remote_versions_are_applied_off_spine_and_become_visible() {
        let config = Config::builder()
            .num_replicas(3)
            .num_partitions(1)
            .worker_lanes(4)
            .build()
            .expect("valid config");
        let (server, rx) = start_with_config(ExecProtocol::Pocc, config);
        let origin_a = ServerId::new(ReplicaId(1), PartitionId(0));
        let origin_b = ServerId::new(ReplicaId(2), PartitionId(0));
        let n = 200u64;
        for i in 0..n {
            let mk = |origin: ServerId, ts: u64| ServerMessage::Replicate {
                version: Version::new(
                    Key(i),
                    Value::from(i),
                    origin.replica,
                    Timestamp::from_micros(ts),
                    DependencyVector::zero(3),
                ),
            };
            // Per-origin timestamps strictly increase, as FIFO replication guarantees.
            server.handle_server_message(origin_a, mk(origin_a, i + 1));
            server.handle_server_message(origin_b, mk(origin_b, i + 1));
        }
        let metrics = server.metrics();
        assert_eq!(metrics.replicate_received, 2 * n);
        assert_eq!(server.store_stats().versions as u64, 2 * n);

        // A GET depending on the last remote version is served once published.
        let mut rdv = DependencyVector::zero(3);
        rdv.set(ReplicaId(1), Timestamp::from_micros(n));
        server
            .submit_client(ClientId(1), ClientRequest::Get { key: Key(0), rdv })
            .expect("server is running");
        match recv_reply(&rx) {
            ClientReply::Get(resp) => assert!(resp.value.is_some()),
            other => panic!("expected a GET reply, got {other:?}"),
        }
    }

    #[test]
    fn batched_replication_interleaved_with_heartbeats_keeps_order() {
        let config = Config::builder()
            .num_replicas(2)
            .num_partitions(1)
            .worker_lanes(2)
            .build()
            .expect("valid config");
        let (server, _rx) = start_with_config(ExecProtocol::Pocc, config);
        let origin = ServerId::new(ReplicaId(1), PartitionId(0));
        let versions: Vec<ServerMessage> = (0..50u64)
            .map(|i| ServerMessage::Replicate {
                version: Version::new(
                    Key(i),
                    Value::from(i),
                    origin.replica,
                    Timestamp::from_micros(i + 1),
                    DependencyVector::zero(2),
                ),
            })
            .collect();
        server.handle_server_message(origin, ServerMessage::Batch { messages: versions });
        // The heartbeat's advance must not overtake the queued versions: handling it
        // drains the remote pipeline first.
        server.handle_server_message(
            origin,
            ServerMessage::Heartbeat {
                clock: Timestamp::from_micros(1_000),
            },
        );
        let metrics = server.metrics();
        assert_eq!(metrics.replicate_received, 50);
        assert_eq!(metrics.heartbeats_received, 1);
        assert_eq!(server.store_stats().versions, 50);
    }
}
