//! A clock decorator that adds a constant offset and a linear drift.

use crate::Clock;
use pocc_types::Timestamp;
use std::time::Duration;

/// Wraps another clock and skews its readings by `offset + drift_ppm * elapsed`.
///
/// This models a server whose NTP-disciplined clock is a little ahead of or behind true
/// time and drifts slowly between synchronisation rounds. POCC tolerates arbitrary skew
/// without violating safety; skew only shows up as extra waiting in the PUT handler
/// (Algorithm 2 line 7) and as spurious GET blocking, which the ablation benchmark
/// `ablation_intervals` quantifies.
#[derive(Clone, Debug)]
pub struct SkewedClock<C> {
    inner: C,
    /// Offset added to every reading. Positive means the clock runs ahead of `inner`.
    offset_micros: i64,
    /// Drift in parts-per-million of elapsed inner time.
    drift_ppm: i64,
}

impl<C: Clock> SkewedClock<C> {
    /// Creates a skewed view of `inner` with a fixed `offset` (may be negative) and a
    /// linear `drift_ppm` (microseconds gained per second of inner time, roughly).
    pub fn new(inner: C, offset: i64, drift_ppm: i64) -> Self {
        SkewedClock {
            inner,
            offset_micros: offset,
            drift_ppm,
        }
    }

    /// Creates a skewed view with only a constant offset.
    pub fn with_offset(inner: C, offset: Duration, ahead: bool) -> Self {
        let off = offset.as_micros() as i64;
        SkewedClock::new(inner, if ahead { off } else { -off }, 0)
    }

    /// The constant offset in microseconds (positive = ahead).
    pub fn offset_micros(&self) -> i64 {
        self.offset_micros
    }

    /// The drift rate in parts per million.
    pub fn drift_ppm(&self) -> i64 {
        self.drift_ppm
    }

    /// A reference to the wrapped clock.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Clock> Clock for SkewedClock<C> {
    fn now(&self) -> Timestamp {
        let base = self.inner.now().as_micros() as i64;
        let drift = base / 1_000_000 * self.drift_ppm;
        let skewed = base + self.offset_micros + drift;
        Timestamp::from_micros(skewed.max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;

    #[test]
    fn positive_offset_runs_ahead() {
        let base = ManualClock::new(Timestamp(1_000));
        let skewed = SkewedClock::with_offset(base, Duration::from_micros(200), true);
        assert_eq!(skewed.now(), Timestamp(1_200));
        assert_eq!(skewed.offset_micros(), 200);
    }

    #[test]
    fn negative_offset_runs_behind_and_saturates_at_zero() {
        let base = ManualClock::new(Timestamp(100));
        let skewed = SkewedClock::with_offset(base.clone(), Duration::from_micros(300), false);
        assert_eq!(skewed.now(), Timestamp::ZERO);
        base.set(Timestamp(1_000));
        assert_eq!(skewed.now(), Timestamp(700));
    }

    #[test]
    fn drift_accumulates_with_elapsed_time() {
        let base = ManualClock::new(Timestamp::from_secs(10));
        let skewed = SkewedClock::new(base.clone(), 0, 100); // 100 ppm
        assert_eq!(skewed.now(), Timestamp(10_000_000 + 10 * 100));
        base.set(Timestamp::from_secs(20));
        assert_eq!(skewed.now(), Timestamp(20_000_000 + 20 * 100));
        assert_eq!(skewed.drift_ppm(), 100);
    }

    #[test]
    fn inner_accessor_returns_wrapped_clock() {
        let base = ManualClock::new(Timestamp(5));
        let skewed = SkewedClock::new(base, 1, 0);
        assert_eq!(skewed.inner().now(), Timestamp(5));
    }
}
