//! The real wall clock.

use crate::Clock;
use pocc_types::Timestamp;
use std::time::Instant;

/// A wall clock backed by [`Instant`], anchored at the moment it was created (or at an
/// explicit epoch shared by several clocks).
///
/// The threaded runtime (`pocc-runtime`) gives every in-process "server" a `SystemClock`
/// sharing a common epoch, which models perfectly synchronised clocks; wrap it in
/// [`crate::SkewedClock`] to reintroduce NTP-like offsets.
#[derive(Clone, Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a clock whose time zero is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }

    /// Creates a clock measuring time since the given epoch. Several servers constructed
    /// with the same epoch observe mutually consistent timestamps.
    pub fn with_epoch(epoch: Instant) -> Self {
        SystemClock { epoch }
    }

    /// The epoch this clock measures from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn time_moves_forward() {
        let c = SystemClock::new();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
    }

    #[test]
    fn clocks_with_shared_epoch_agree() {
        let epoch = Instant::now();
        let a = SystemClock::with_epoch(epoch);
        let b = SystemClock::with_epoch(epoch);
        let ta = a.now();
        let tb = b.now();
        // Both read the same underlying instant; they can differ only by the time between
        // the two calls, which is far below a millisecond.
        assert!(tb.saturating_since(ta) < Duration::from_millis(5));
        assert_eq!(a.epoch(), b.epoch());
    }

    #[test]
    fn default_is_fresh_epoch() {
        let c = SystemClock::default();
        assert!(c.now() < Timestamp::from_secs(1));
    }
}
