//! Construction of per-server clock fleets with bounded random skew.

#[cfg(test)]
use crate::Clock;
use crate::{ManualClock, MonotonicClock, SkewedClock};
use pocc_types::{ServerId, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// How per-server clock skew is generated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SkewModel {
    /// All clocks are perfectly synchronised.
    None,
    /// Each server gets a constant offset drawn uniformly from `[-max, +max]`.
    UniformOffset {
        /// Maximum absolute offset.
        max: Duration,
    },
    /// Each server gets a constant offset drawn uniformly from `[-max, +max]` and a drift
    /// rate drawn uniformly from `[-max_ppm, +max_ppm]` parts per million.
    OffsetAndDrift {
        /// Maximum absolute offset.
        max: Duration,
        /// Maximum absolute drift in parts per million.
        max_ppm: i64,
    },
}

impl SkewModel {
    /// Draws `(offset_micros, drift_ppm)` for one server.
    fn sample(&self, rng: &mut StdRng) -> (i64, i64) {
        match *self {
            SkewModel::None => (0, 0),
            SkewModel::UniformOffset { max } => {
                let m = max.as_micros() as i64;
                (if m == 0 { 0 } else { rng.gen_range(-m..=m) }, 0)
            }
            SkewModel::OffsetAndDrift { max, max_ppm } => {
                let m = max.as_micros() as i64;
                let off = if m == 0 { 0 } else { rng.gen_range(-m..=m) };
                let drift = if max_ppm == 0 {
                    0
                } else {
                    rng.gen_range(-max_ppm..=max_ppm)
                };
                (off, drift)
            }
        }
    }
}

/// Builds the clocks of a simulated deployment: one [`ManualClock`] driven by the
/// simulator, viewed by each server through a skewed, monotonic lens.
///
/// The factory is deterministic: the same seed and skew model always produce the same
/// per-server offsets, which keeps simulation runs reproducible.
pub struct ClockFactory {
    /// The shared base clock, set by the simulator to the current simulation time.
    base: ManualClock,
    rng: StdRng,
    model: SkewModel,
}

/// The clock handed to one simulated server: skewed view of the shared base clock,
/// made strictly monotonic.
pub type ServerClock = MonotonicClock<SkewedClock<ManualClock>>;

impl ClockFactory {
    /// Creates a factory with the given skew model and RNG seed.
    pub fn new(model: SkewModel, seed: u64) -> Self {
        ClockFactory {
            base: ManualClock::at_zero(),
            rng: StdRng::seed_from_u64(seed),
            model,
        }
    }

    /// The shared base clock. The simulator calls [`ManualClock::set`] on it to advance
    /// simulated time; every server clock built by this factory follows it.
    pub fn base(&self) -> ManualClock {
        self.base.clone()
    }

    /// Builds the clock for one server. The `server` argument is only used for error
    /// messages and debugging; skew is drawn from the factory RNG in call order.
    pub fn clock_for(&mut self, _server: ServerId) -> ServerClock {
        let (offset, drift) = self.model.sample(&mut self.rng);
        MonotonicClock::new(SkewedClock::new(self.base.clone(), offset, drift))
    }

    /// Sets the shared simulation time.
    pub fn set_time(&self, now: Timestamp) {
        self.base.set(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::ServerId;

    fn server(i: u32) -> ServerId {
        ServerId::new(0u16, i)
    }

    #[test]
    fn no_skew_means_all_clocks_agree() {
        let mut f = ClockFactory::new(SkewModel::None, 1);
        let a = f.clock_for(server(0));
        let b = f.clock_for(server(1));
        f.set_time(Timestamp(1_000));
        assert_eq!(a.now(), Timestamp(1_000));
        assert_eq!(b.now(), Timestamp(1_000));
    }

    #[test]
    fn uniform_offset_stays_within_bounds() {
        let max = Duration::from_micros(500);
        let mut f = ClockFactory::new(SkewModel::UniformOffset { max }, 7);
        let clocks: Vec<_> = (0..32).map(|i| f.clock_for(server(i))).collect();
        f.set_time(Timestamp::from_secs(1));
        for c in &clocks {
            let t = c.now().as_micros() as i64;
            assert!((t - 1_000_000).abs() <= 500, "offset out of bounds: {t}");
        }
    }

    #[test]
    fn same_seed_gives_same_skew() {
        let model = SkewModel::OffsetAndDrift {
            max: Duration::from_micros(300),
            max_ppm: 50,
        };
        let mut f1 = ClockFactory::new(model, 42);
        let mut f2 = ClockFactory::new(model, 42);
        let a1 = f1.clock_for(server(0));
        let a2 = f2.clock_for(server(0));
        f1.set_time(Timestamp::from_secs(3));
        f2.set_time(Timestamp::from_secs(3));
        assert_eq!(a1.now(), a2.now());
    }

    #[test]
    fn different_seeds_generally_differ() {
        let model = SkewModel::UniformOffset {
            max: Duration::from_millis(10),
        };
        let mut f1 = ClockFactory::new(model, 1);
        let mut f2 = ClockFactory::new(model, 2);
        let a1 = f1.clock_for(server(0));
        let a2 = f2.clock_for(server(0));
        f1.set_time(Timestamp::from_secs(1));
        f2.set_time(Timestamp::from_secs(1));
        // With 10 ms of range a collision is vanishingly unlikely.
        assert_ne!(a1.now(), a2.now());
    }

    #[test]
    fn server_clocks_are_monotonic_even_with_negative_skew() {
        let mut f = ClockFactory::new(
            SkewModel::UniformOffset {
                max: Duration::from_millis(1),
            },
            9,
        );
        let c = f.clock_for(server(0));
        f.set_time(Timestamp::from_millis(10));
        let a = c.now();
        // Simulated time moves backwards (should not happen, but the clock must cope).
        f.set_time(Timestamp::from_millis(5));
        let b = c.now();
        assert!(b > a);
    }

    #[test]
    fn zero_bounds_are_accepted() {
        let mut f = ClockFactory::new(
            SkewModel::OffsetAndDrift {
                max: Duration::ZERO,
                max_ppm: 0,
            },
            3,
        );
        let c = f.clock_for(server(0));
        f.set_time(Timestamp(123));
        assert_eq!(c.now(), Timestamp(123));
    }
}
