//! A manually driven clock for tests and the discrete-event simulator.

use crate::Clock;
use parking_lot::Mutex;
use pocc_types::Timestamp;
use std::sync::Arc;
use std::time::Duration;

/// A clock whose time only moves when explicitly told to.
///
/// The discrete-event simulator owns one `ManualClock` per simulated server and sets it to
/// the (skew-adjusted) simulation time before invoking the protocol state machine, so that
/// the protocol code sees exactly the same `Clock` interface it sees in production.
///
/// Clones share the same underlying time.
#[derive(Clone, Debug)]
pub struct ManualClock {
    now: Arc<Mutex<Timestamp>>,
}

impl ManualClock {
    /// Creates a clock stopped at `start`.
    pub fn new(start: Timestamp) -> Self {
        ManualClock {
            now: Arc::new(Mutex::new(start)),
        }
    }

    /// Creates a clock stopped at time zero.
    pub fn at_zero() -> Self {
        ManualClock::new(Timestamp::ZERO)
    }

    /// Sets the current time. Setting the clock backwards is allowed (the simulator uses
    /// this to model skew), but [`crate::MonotonicClock`] should be layered on top when the
    /// consumer requires monotonicity.
    pub fn set(&self, now: Timestamp) {
        *self.now.lock() = now;
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        let mut t = self.now.lock();
        *t += delta;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Timestamp {
        *self.now.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_the_given_time() {
        assert_eq!(ManualClock::new(Timestamp(7)).now(), Timestamp(7));
        assert_eq!(ManualClock::at_zero().now(), Timestamp::ZERO);
    }

    #[test]
    fn set_and_advance_move_time() {
        let c = ManualClock::at_zero();
        c.set(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        c.advance(Duration::from_micros(50));
        assert_eq!(c.now(), Timestamp(150));
    }

    #[test]
    fn clones_share_time() {
        let a = ManualClock::at_zero();
        let b = a.clone();
        a.set(Timestamp(42));
        assert_eq!(b.now(), Timestamp(42));
    }

    #[test]
    fn can_move_backwards() {
        let c = ManualClock::new(Timestamp(100));
        c.set(Timestamp(10));
        assert_eq!(c.now(), Timestamp(10));
    }
}
