//! Physical clock abstractions for the POCC reproduction.
//!
//! POCC (§IV) equips every server with a physical clock that provides *monotonically
//! increasing* timestamps, loosely synchronised across servers by a protocol such as NTP.
//! The correctness of the protocol does not depend on the synchronisation precision; only
//! performance (blocking rates, PUT waiting) does.
//!
//! This crate provides:
//!
//! * the [`Clock`] trait — the only interface the protocol crates see,
//! * [`SystemClock`] — the real wall clock, used by the threaded runtime,
//! * [`ManualClock`] — an explicitly driven clock for unit tests and the discrete-event
//!   simulator,
//! * [`SkewedClock`] — a decorator adding a constant offset and a drift rate to any clock,
//!   modelling imperfect NTP synchronisation,
//! * [`MonotonicClock`] — a decorator enforcing strictly increasing timestamps, exactly
//!   like the `Clock^m_n` used in Algorithm 2 (two PUTs at the same server never get the
//!   same update time),
//! * [`ClockFactory`]/[`SkewModel`] — helpers to build a fleet of per-server clocks with
//!   bounded random skew from a seed, as the simulator does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod factory;
mod manual;
mod monotonic;
mod skewed;
mod system;

pub use factory::{ClockFactory, SkewModel};
pub use manual::ManualClock;
pub use monotonic::MonotonicClock;
pub use skewed::SkewedClock;
pub use system::SystemClock;

use pocc_types::Timestamp;

/// A source of physical timestamps.
///
/// Implementations must be cheap to call and safe to share across threads; the protocol
/// crates call [`Clock::now`] on every operation.
pub trait Clock: Send + Sync {
    /// The current time according to this clock.
    fn now(&self) -> Timestamp;
}

impl<C: Clock + ?Sized> Clock for std::sync::Arc<C> {
    fn now(&self) -> Timestamp {
        (**self).now()
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now(&self) -> Timestamp {
        (**self).now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clock_trait_is_object_safe_and_blanket_impls_work() {
        let manual = ManualClock::new(Timestamp(5));
        let arc: Arc<dyn Clock> = Arc::new(manual);
        assert_eq!(arc.now(), Timestamp(5));
        let by_ref: &dyn Clock = &*arc;
        assert_eq!(by_ref.now(), Timestamp(5));
    }
}
