//! A clock decorator that enforces strictly increasing readings.

use crate::Clock;
use parking_lot::Mutex;
use pocc_types::Timestamp;
use std::sync::Arc;

/// Wraps another clock and guarantees that successive readings are strictly increasing.
///
/// POCC servers use their clock both to timestamp updates and to advance their version
/// vector (Algorithm 2 lines 7–8). Two updates created by the same server must never carry
/// the same timestamp, or the last-writer-wins rule would have to break a tie between two
/// versions from the same replica. `MonotonicClock` returns `max(inner.now(), last + 1)`,
/// which is exactly the standard hybrid-clock trick: the clock never goes backwards and
/// never repeats, even if the underlying physical clock is stepped backwards by NTP.
///
/// Clones share the same monotonic state.
#[derive(Clone, Debug)]
pub struct MonotonicClock<C> {
    inner: C,
    last: Arc<Mutex<Timestamp>>,
}

impl<C: Clock> MonotonicClock<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> Self {
        MonotonicClock {
            inner,
            last: Arc::new(Mutex::new(Timestamp::ZERO)),
        }
    }

    /// The last timestamp handed out (zero if none yet).
    pub fn last_issued(&self) -> Timestamp {
        *self.last.lock()
    }

    /// A reference to the wrapped clock.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Clock> Clock for MonotonicClock<C> {
    fn now(&self) -> Timestamp {
        let physical = self.inner.now();
        let mut last = self.last.lock();
        let next = if physical > *last {
            physical
        } else {
            last.tick()
        };
        *last = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;

    #[test]
    fn follows_the_inner_clock_when_it_advances() {
        let base = ManualClock::new(Timestamp(10));
        let mono = MonotonicClock::new(base.clone());
        assert_eq!(mono.now(), Timestamp(10));
        base.set(Timestamp(20));
        assert_eq!(mono.now(), Timestamp(20));
        assert_eq!(mono.last_issued(), Timestamp(20));
    }

    #[test]
    fn never_repeats_when_the_inner_clock_stalls() {
        let base = ManualClock::new(Timestamp(10));
        let mono = MonotonicClock::new(base);
        let a = mono.now();
        let b = mono.now();
        let c = mono.now();
        assert!(a < b && b < c);
        assert_eq!(c, Timestamp(12));
    }

    #[test]
    fn never_goes_backwards_when_the_inner_clock_is_stepped_back() {
        let base = ManualClock::new(Timestamp(100));
        let mono = MonotonicClock::new(base.clone());
        assert_eq!(mono.now(), Timestamp(100));
        base.set(Timestamp(50));
        assert!(mono.now() > Timestamp(100));
    }

    #[test]
    fn clones_share_monotonic_state() {
        let base = ManualClock::new(Timestamp(10));
        let a = MonotonicClock::new(base);
        let b = a.clone();
        let ta = a.now();
        let tb = b.now();
        assert!(tb > ta);
        assert_eq!(a.inner().now(), Timestamp(10));
    }

    #[test]
    fn many_calls_yield_strictly_increasing_sequence() {
        let base = ManualClock::new(Timestamp(1));
        let mono = MonotonicClock::new(base);
        let mut prev = Timestamp::ZERO;
        for _ in 0..1_000 {
            let t = mono.now();
            assert!(t > prev);
            prev = t;
        }
    }
}
