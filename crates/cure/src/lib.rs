//! Cure\* — the pessimistic baseline the paper compares POCC against.
//!
//! Cure ([Akkoorath et al., ICDCS 2016]) achieves causal consistency with physical vector
//! clocks and a periodic intra-DC **stabilization protocol**: the partitions of a data
//! center exchange their version vectors and compute the entry-wise minimum, the
//! *Globally Stable Snapshot* (GSS). A remote version is made visible to clients only when
//! it is covered by the GSS — i.e. only when every partition of the local data center is
//! known to have received all of its potential dependencies. Locally originated versions
//! are visible immediately, because their dependencies were stable when they were created.
//!
//! The paper evaluates against *Cure\**: a re-implementation of Cure extended with plain
//! GET/PUT operations so that it can run the same workloads as POCC, exchanging exactly the
//! same client metadata. This crate is that baseline. The differences from
//! [`pocc_protocol::PoccServer`] are precisely the ones the paper names (§V):
//!
//! * a GET never blocks, but returns the freshest *stable* version — it may have to walk
//!   the version chain past fresher-but-unstable versions (paying CPU for it) and is prone
//!   to returning stale data;
//! * a periodic stabilization protocol runs every few milliseconds, costing messages and
//!   vector merges;
//! * read-only transaction snapshots are bounded by the GSS instead of by the
//!   coordinator's version vector.
//!
//! [Akkoorath et al., ICDCS 2016]: https://doi.org/10.1109/ICDCS.2016.98

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;

pub use server::{CurePolicy, CureServer, CureStatus};

/// Cure\* reuses the POCC client unchanged: both systems exchange the same client-side
/// dependency metadata, which is what makes the comparison fair (§V).
pub use pocc_protocol::Client;
