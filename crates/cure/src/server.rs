//! The Cure\* server state machine.

use pocc_clock::Clock;
use pocc_proto::{
    ClientReply, ClientRequest, GetResponse, MessageBatcher, MetricsSnapshot, ProtocolServer,
    ServerMessage, ServerOutput, TxId, TxItem,
};
use pocc_storage::{partition_for_key, ShardedStore};
use pocc_types::{
    ClientId, Config, DependencyVector, Key, PartitionId, ReplicaId, ServerId, Timestamp, Version,
    VersionVector,
};
use std::collections::HashMap;

/// State of a read-only transaction coordinated by this server.
#[derive(Clone, Debug)]
struct TxState {
    client: ClientId,
    outstanding_slices: usize,
    items: Vec<TxItem>,
    started: Timestamp,
}

/// A parked transactional slice read (the only operation that can wait in Cure\*, and only
/// for the client-session part of the snapshot — see the module documentation).
#[derive(Clone, Debug)]
struct ParkedSlice {
    origin: Option<ServerId>,
    tx: TxId,
    keys: Vec<Key>,
    snapshot: DependencyVector,
    since: Timestamp,
}

/// An observability snapshot of a Cure\* server.
#[derive(Clone, Debug)]
pub struct CureStatus {
    /// The server's version vector.
    pub version_vector: VersionVector,
    /// The server's current view of the Globally Stable Snapshot.
    pub gss: DependencyVector,
    /// Number of parked transactional slice reads.
    pub pending_slices: usize,
    /// Read-only transactions currently being coordinated.
    pub active_transactions: usize,
    /// Storage statistics.
    pub store: pocc_storage::StoreStats,
}

/// A Cure\* server `p^m_n`.
///
/// Implements the same [`ProtocolServer`] interface as [`pocc_protocol::PoccServer`], so
/// the simulator and the threaded runtime can run either protocol over identical
/// workloads, deployments and network conditions.
pub struct CureServer<C> {
    id: ServerId,
    config: Config,
    clock: C,
    store: ShardedStore,
    /// The version vector `VV^m_n`.
    vv: VersionVector,
    /// The latest version vector received from each local partition (including this one),
    /// used to compute the GSS.
    local_vvs: HashMap<PartitionId, VersionVector>,
    /// The Globally Stable Snapshot: the entry-wise minimum over `local_vvs`, refreshed by
    /// the stabilization protocol.
    gss: DependencyVector,
    /// When the last stabilization round was initiated.
    last_stabilization: Timestamp,
    /// When garbage was last collected.
    last_gc: Timestamp,
    /// Parked transactional slice reads.
    parked: Vec<ParkedSlice>,
    /// Read-only transactions this server coordinates.
    transactions: HashMap<TxId, TxState>,
    next_tx: TxId,
    /// Coalesces replication traffic per destination when batching is enabled
    /// (`Config::replication_batching`); flushed at the start of every tick.
    batcher: MessageBatcher,
    metrics: MetricsSnapshot,
    extra_work: u64,
}

impl<C: Clock> CureServer<C> {
    /// Creates a Cure\* server for `id` with the given deployment configuration and clock.
    pub fn new(id: ServerId, config: Config, clock: C) -> Self {
        let m = config.num_replicas;
        CureServer {
            store: ShardedStore::with_shards(
                id.partition,
                config.num_partitions,
                config.storage_shards,
            ),
            vv: VersionVector::zero(m),
            local_vvs: HashMap::new(),
            gss: DependencyVector::zero(m),
            last_stabilization: Timestamp::ZERO,
            last_gc: Timestamp::ZERO,
            parked: Vec::new(),
            transactions: HashMap::new(),
            next_tx: TxId(0),
            batcher: MessageBatcher::new(config.replication_batching),
            metrics: MetricsSnapshot::default(),
            extra_work: 0,
            id,
            config,
            clock,
        }
    }

    /// The server's current version vector.
    pub fn version_vector(&self) -> &VersionVector {
        &self.vv
    }

    /// The server's current view of the Globally Stable Snapshot.
    pub fn gss(&self) -> &DependencyVector {
        &self.gss
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// An observability snapshot of the server's state.
    pub fn status(&self) -> CureStatus {
        CureStatus {
            version_vector: self.vv.clone(),
            gss: self.gss.clone(),
            pending_slices: self.parked.len(),
            active_transactions: self.transactions.len(),
            store: self.store.stats(),
        }
    }

    fn send(&mut self, to: ServerId, message: ServerMessage) -> ServerOutput {
        self.metrics.bytes_sent += message.wire_size() as u64;
        match &message {
            ServerMessage::Replicate { .. } => self.metrics.replicate_sent += 1,
            ServerMessage::Heartbeat { .. } => self.metrics.heartbeats_sent += 1,
            ServerMessage::StabilizationVector { .. } => self.metrics.stabilization_messages += 1,
            ServerMessage::GcVector { .. } => self.metrics.gc_messages += 1,
            _ => {}
        }
        ServerOutput::send(to, message)
    }

    /// Sends a message through the replication batcher: delivered immediately when
    /// batching is off (or the message is latency-sensitive), deferred to the next tick's
    /// flush otherwise. Per-message metrics are accounted either way.
    fn send_via_batcher(
        &mut self,
        to: ServerId,
        message: ServerMessage,
        outputs: &mut Vec<ServerOutput>,
    ) {
        let out = self.send(to, message);
        if let Some(out) = self.batcher.stage_one(out) {
            outputs.push(out);
        }
    }

    fn siblings(&self) -> Vec<ServerId> {
        self.config
            .replicas()
            .filter(|r| *r != self.id.replica)
            .map(|r| self.id.sibling(r))
            .collect()
    }

    fn local_peers(&self) -> Vec<ServerId> {
        self.config
            .partitions()
            .filter(|p| *p != self.id.partition)
            .map(|p| self.id.local_peer(p))
            .collect()
    }

    // -----------------------------------------------------------------------------------
    // GET: freshest *stable* version, never blocks
    // -----------------------------------------------------------------------------------

    fn serve_get(&mut self, client: ClientId, key: Key) -> ServerOutput {
        let local = self.id.replica;
        let outcome = self.store.latest_stable(key, &self.gss, local);
        // Walking past unstable versions is the CPU cost of pessimism the paper calls out.
        self.extra_work += outcome.stats.traversed.saturating_sub(1) as u64;
        self.metrics.gets_served += 1;
        if outcome.is_old() {
            self.metrics.old_gets += 1;
            self.metrics.fresher_versions_sum += outcome.stats.fresher_than_returned as u64;
        }
        let unmerged = self.store.unmerged_count(key, &self.gss, local);
        if unmerged > 0 {
            self.metrics.unmerged_gets += 1;
            self.metrics.unmerged_versions_sum += unmerged as u64;
        }
        let response = match outcome.version {
            Some(v) => GetResponse {
                value: Some(v.value.clone()),
                update_time: v.update_time,
                deps: v.deps.clone(),
                source_replica: v.source_replica,
            },
            None => GetResponse {
                value: None,
                update_time: Timestamp::ZERO,
                deps: DependencyVector::zero(self.config.num_replicas),
                source_replica: local,
            },
        };
        ServerOutput::reply(client, ClientReply::Get(response))
    }

    // -----------------------------------------------------------------------------------
    // PUT: identical to POCC's, minus the optional dependency wait
    // -----------------------------------------------------------------------------------

    fn serve_put(
        &mut self,
        client: ClientId,
        key: Key,
        value: pocc_types::Value,
        dv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        let now = self.clock.now();
        let max_dep = dv.max_entry();
        let update_time = if now > max_dep {
            now
        } else {
            self.metrics.clock_wait_time +=
                max_dep.saturating_since(now) + std::time::Duration::from_micros(1);
            max_dep.tick()
        };
        self.vv.advance(self.id.replica, update_time);
        let version = Version::new(key, value, self.id.replica, update_time, dv);
        self.store
            .insert(version.clone())
            .expect("PUT routed to the wrong partition");
        for sibling in self.siblings() {
            let msg = ServerMessage::Replicate {
                version: version.clone(),
            };
            self.send_via_batcher(sibling, msg, outputs);
        }
        self.metrics.puts_served += 1;
        outputs.push(ServerOutput::reply(
            client,
            ClientReply::Put { update_time },
        ));
    }

    // -----------------------------------------------------------------------------------
    // RO-TX: snapshot bounded by the GSS
    // -----------------------------------------------------------------------------------

    fn handle_ro_tx(
        &mut self,
        client: ClientId,
        keys: Vec<Key>,
        rdv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if keys.is_empty() {
            self.metrics.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                client,
                ClientReply::RoTx { items: Vec::new() },
            ));
            return;
        }

        // The snapshot visible to a Cure* transaction is bounded by the items *stable* at
        // the coordinator (the GSS), extended with the client's own causal history so that
        // session guarantees hold. The local entry is taken from the coordinator's version
        // vector because locally originated items are always visible in Cure.
        let mut snapshot = self.gss.joined(&rdv);
        snapshot.advance(self.id.replica, self.vv.get(self.id.replica));

        let mut by_partition: HashMap<PartitionId, Vec<Key>> = HashMap::new();
        for key in keys {
            by_partition
                .entry(partition_for_key(key, self.config.num_partitions))
                .or_default()
                .push(key);
        }

        let tx = self.next_tx;
        self.next_tx = self.next_tx.next();
        self.transactions.insert(
            tx,
            TxState {
                client,
                outstanding_slices: by_partition.len(),
                items: Vec::new(),
                started: self.clock.now(),
            },
        );

        // Deterministic fan-out order (HashMap iteration order is randomised per process).
        let mut groups: Vec<_> = by_partition.into_iter().collect();
        groups.sort_by_key(|(partition, _)| *partition);
        let mut local_keys = None;
        for (partition, keys) in groups {
            if partition == self.id.partition {
                local_keys = Some(keys);
            } else {
                let msg = ServerMessage::SliceRequest {
                    tx,
                    client,
                    keys,
                    snapshot: snapshot.clone(),
                };
                let to = self.id.local_peer(partition);
                outputs.push(self.send(to, msg));
            }
        }
        if let Some(keys) = local_keys {
            self.serve_or_park_slice(None, tx, keys, snapshot, outputs);
        }
    }

    fn complete_slice(&mut self, tx: TxId, items: Vec<TxItem>, outputs: &mut Vec<ServerOutput>) {
        let finished = {
            let Some(state) = self.transactions.get_mut(&tx) else {
                return;
            };
            state.items.extend(items);
            state.outstanding_slices = state.outstanding_slices.saturating_sub(1);
            state.outstanding_slices == 0
        };
        if finished {
            let state = self.transactions.remove(&tx).expect("tx present");
            self.metrics.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::RoTx { items: state.items },
            ));
        }
    }

    fn serve_or_park_slice(
        &mut self,
        origin: Option<ServerId>,
        tx: TxId,
        keys: Vec<Key>,
        snapshot: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        // The GSS part of the snapshot is below every local version vector by construction;
        // only the client-session part (and the coordinator's local clock entry) can be
        // ahead of this partition's vector, and only by a clock skew's worth of time.
        if self.vv.covers(&snapshot) {
            let items = self.read_slice(&keys, &snapshot);
            self.metrics.slices_served += 1;
            match origin {
                Some(origin) => {
                    let msg = ServerMessage::SliceResponse { tx, items };
                    outputs.push(self.send(origin, msg));
                }
                None => self.complete_slice(tx, items, outputs),
            }
        } else {
            self.metrics.blocked_operations += 1;
            self.parked.push(ParkedSlice {
                origin,
                tx,
                keys,
                snapshot,
                since: self.clock.now(),
            });
        }
    }

    fn read_slice(&mut self, keys: &[Key], snapshot: &DependencyVector) -> Vec<TxItem> {
        let local = self.id.replica;
        let mut items = Vec::with_capacity(keys.len());
        for &key in keys {
            let outcome = self.store.latest_in_snapshot(key, snapshot);
            self.extra_work += outcome.stats.traversed.saturating_sub(1) as u64;
            self.metrics.tx_items_returned += 1;
            if outcome.is_old() {
                self.metrics.old_tx_items += 1;
            }
            if self.store.has_unmerged_versions(key, &self.gss, local) {
                self.metrics.unmerged_tx_items += 1;
            }
            let response = match outcome.version {
                Some(v) => GetResponse {
                    value: Some(v.value.clone()),
                    update_time: v.update_time,
                    deps: v.deps.clone(),
                    source_replica: v.source_replica,
                },
                None => GetResponse {
                    value: None,
                    update_time: Timestamp::ZERO,
                    deps: DependencyVector::zero(self.config.num_replicas),
                    source_replica: local,
                },
            };
            items.push(TxItem { key, response });
        }
        items
    }

    fn unpark(&mut self, outputs: &mut Vec<ServerOutput>) {
        if self.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        let now = self.clock.now();
        for slice in parked {
            if !self.vv.covers(&slice.snapshot) {
                self.parked.push(slice);
                continue;
            }
            self.metrics.total_block_time += now.saturating_since(slice.since);
            let items = self.read_slice(&slice.keys, &slice.snapshot);
            self.metrics.slices_served += 1;
            match slice.origin {
                Some(origin) => {
                    let msg = ServerMessage::SliceResponse {
                        tx: slice.tx,
                        items,
                    };
                    let out = self.send(origin, msg);
                    outputs.push(out);
                }
                None => self.complete_slice(slice.tx, items, outputs),
            }
        }
    }

    // -----------------------------------------------------------------------------------
    // Stabilization protocol (GSS computation)
    // -----------------------------------------------------------------------------------

    /// Recomputes the GSS as the entry-wise minimum of the latest known version vectors of
    /// every partition in the local data center (including this one). The GSS only moves
    /// forward.
    fn recompute_gss(&mut self) {
        if self.local_vvs.len() < self.config.num_partitions.saturating_sub(1) {
            // Not every peer has reported yet: the GSS cannot safely advance.
            return;
        }
        let mut gss = DependencyVector::from_entries(self.vv.as_slice().to_vec());
        for vv in self.local_vvs.values() {
            gss.meet(&DependencyVector::from_entries(vv.as_slice().to_vec()));
            self.extra_work += 1;
        }
        // Monotonic advance.
        self.gss.join(&gss);
    }

    /// One stabilization round: broadcast this server's version vector to the local peers
    /// and refresh the GSS from what is known so far.
    fn stabilization_round(&mut self, outputs: &mut Vec<ServerOutput>) {
        let vv = self.vv.clone();
        for peer in self.local_peers() {
            let msg = ServerMessage::StabilizationVector { vv: vv.clone() };
            outputs.push(self.send(peer, msg));
        }
        self.recompute_gss();
    }
}

impl<C: Clock> ProtocolServer for CureServer<C> {
    fn server_id(&self) -> ServerId {
        self.id
    }

    fn handle_client_request(
        &mut self,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        match request {
            ClientRequest::Get { key, .. } => {
                // Pessimistic GET: the client's read dependency vector is *not* checked —
                // the GSS guarantees that every visible version's dependencies are already
                // installed everywhere in the data center, so no wait is ever needed.
                let out = self.serve_get(client, key);
                outputs.push(out);
            }
            ClientRequest::Put { key, value, dv } => {
                self.serve_put(client, key, value, dv, &mut outputs);
                self.unpark(&mut outputs);
            }
            ClientRequest::RoTx { keys, rdv } => self.handle_ro_tx(client, keys, rdv, &mut outputs),
        }
        outputs
    }

    fn handle_server_message(
        &mut self,
        from: ServerId,
        message: ServerMessage,
    ) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        match message {
            ServerMessage::Replicate { version } => {
                self.metrics.replicate_received += 1;
                self.vv.advance(from.replica, version.update_time);
                self.store
                    .insert(version)
                    .expect("replicated update routed to the wrong partition");
                self.unpark(&mut outputs);
            }
            ServerMessage::Heartbeat { clock } => {
                self.metrics.heartbeats_received += 1;
                self.vv.advance(from.replica, clock);
                self.unpark(&mut outputs);
            }
            ServerMessage::SliceRequest {
                tx, keys, snapshot, ..
            } => {
                self.serve_or_park_slice(Some(from), tx, keys, snapshot, &mut outputs);
            }
            ServerMessage::SliceResponse { tx, items } => {
                self.complete_slice(tx, items, &mut outputs);
            }
            ServerMessage::StabilizationVector { vv } => {
                self.metrics.stabilization_messages += 1;
                self.local_vvs.insert(from.partition, vv);
                self.recompute_gss();
                self.unpark(&mut outputs);
            }
            ServerMessage::GcVector { .. } => {
                // Cure* garbage-collects from the GSS directly; explicit GC vectors are
                // counted but not needed.
                self.metrics.gc_messages += 1;
            }
            ServerMessage::Batch { messages } => {
                for inner in messages {
                    outputs.extend(self.handle_server_message(from, inner));
                }
            }
        }
        outputs
    }

    fn tick(&mut self) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        // Ship the traffic coalesced since the last tick first, so heartbeats emitted
        // below cannot overtake buffered replication on the FIFO channels.
        self.batcher.flush_into(&mut self.metrics, &mut outputs);
        let now = self.clock.now();
        let local = self.id.replica;

        // Heartbeats, exactly as in POCC.
        if now >= self.vv.get(local) + self.config.heartbeat_interval {
            self.vv.set(local, now);
            for sibling in self.siblings() {
                let msg = ServerMessage::Heartbeat { clock: now };
                outputs.push(self.send(sibling, msg));
            }
            self.unpark(&mut outputs);
        }

        // The stabilization protocol, run every `stabilization_interval` (5 ms in §V-A).
        if now.saturating_since(self.last_stabilization) >= self.config.stabilization_interval {
            self.last_stabilization = now;
            self.stabilization_round(&mut outputs);
        }

        // Garbage collection from the GSS: every version below the snapshot any future
        // transaction could use is collectable except the newest such version.
        if now.saturating_since(self.last_gc) >= self.config.gc_interval {
            self.last_gc = now;
            let gss = self.gss.clone();
            let removed = self.store.collect_garbage(&gss);
            self.metrics.gc_versions_removed += removed as u64;
        }

        // Transactions blocked beyond the partition timeout abort the client session, as
        // in POCC (Cure itself would not need this, but the shared harness expects the
        // same session semantics from both systems).
        let timeout = self.config.partition_detection_timeout;
        let expired: Vec<TxId> = self
            .transactions
            .iter()
            .filter(|(_, st)| now.saturating_since(st.started) >= timeout)
            .map(|(tx, _)| *tx)
            .collect();
        for tx in expired {
            let state = self.transactions.remove(&tx).expect("tx present");
            self.metrics.sessions_aborted += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::SessionAborted {
                    reason: "read-only transaction blocked beyond the partition timeout".into(),
                },
            ));
        }
        self.parked
            .retain(|s| now.saturating_since(s.since) < timeout || s.origin.is_some());

        outputs
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.metrics.clone();
        m.currently_blocked = self.parked.len() as u64;
        m
    }

    fn digest(&self) -> Vec<(Key, Timestamp, ReplicaId)> {
        self.store.digest()
    }

    fn store_stats(&self) -> pocc_storage::StoreStats {
        self.store.stats()
    }

    fn shard_stats(&self) -> Vec<pocc_storage::ShardStats> {
        self.store.shard_stats()
    }

    fn take_extra_work(&mut self) -> u64 {
        std::mem::take(&mut self.extra_work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_clock::ManualClock;
    use pocc_proto::expect_reply;
    use pocc_types::Value;
    use std::time::Duration;

    const MS: u64 = 1_000;

    fn config(replicas: usize, partitions: usize) -> Config {
        Config::builder()
            .num_replicas(replicas)
            .num_partitions(partitions)
            .stabilization_interval(Duration::from_millis(5))
            .build()
            .unwrap()
    }

    fn server(
        replica: u16,
        partition: u32,
        cfg: &Config,
        clock: &ManualClock,
    ) -> CureServer<ManualClock> {
        CureServer::new(
            ServerId::new(replica, partition),
            cfg.clone(),
            clock.clone(),
        )
    }

    fn key_in(partition: usize, num_partitions: usize) -> Key {
        (0u64..)
            .map(Key)
            .find(|k| partition_for_key(*k, num_partitions).index() == partition)
            .unwrap()
    }

    fn extract_reply(outputs: &[ServerOutput], client: ClientId) -> Option<ClientReply> {
        outputs.iter().find_map(|o| match o {
            ServerOutput::Reply { client: c, reply } if *c == client => Some(reply.clone()),
            _ => None,
        })
    }

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    #[test]
    fn local_writes_are_immediately_visible() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("local"),
                dv: dv(&[0, 0, 0]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"local");
            }
        );
        assert_eq!(s.metrics().old_gets, 0);
    }

    #[test]
    fn remote_writes_stay_invisible_until_the_gss_covers_them() {
        // This is the pessimism the paper measures: the fresh remote version exists locally
        // but the GET returns the older stable one until the stabilization protocol
        // advances the GSS.
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 2);

        // An old local version, then a fresh remote one whose stability is unknown.
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("old-local"),
                dv: dv(&[0, 0, 0]),
            },
        );
        let remote = Version::new(
            key,
            Value::from("fresh-remote"),
            ReplicaId(1),
            Timestamp(20 * MS),
            dv(&[0, 0, 0]),
        );
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version: remote },
        );

        // GET: the remote version is not covered by the GSS (still zero), so the stale
        // local version is returned and the staleness counters move.
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"old-local");
            }
        );
        let m = s.metrics();
        assert_eq!(m.old_gets, 1);
        assert_eq!(m.unmerged_gets, 1);
        assert_eq!(m.fresher_versions_sum, 1);
        assert!(s.take_extra_work() >= 1, "the chain walk must be charged");

        // The stabilization protocol runs: the peer partition reports a version vector
        // covering the remote update, the GSS advances, and the fresh version becomes
        // visible.
        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(30 * MS),
                    Timestamp(30 * MS),
                    Timestamp(30 * MS),
                ]),
            },
        );
        // This server's own VV must also cover it (it does: the replicate advanced entry 1,
        // and entries 0/2 advance with heartbeat/tick).
        clock.set(Timestamp(31 * MS));
        s.tick();
        s.handle_server_message(
            ServerId::new(2u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(30 * MS),
            },
        );
        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(31 * MS),
                    Timestamp(30 * MS),
                    Timestamp(30 * MS),
                ]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"fresh-remote");
            }
        );
    }

    #[test]
    fn gets_never_block_even_with_unsatisfied_client_dependencies() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        // The client claims a dependency far in the future; Cure* serves the GET anyway
        // (the visible snapshot already contains every dependency of what it returns).
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 999 * MS, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(_))
        ));
        assert_eq!(s.metrics().blocked_operations, 0);
    }

    #[test]
    fn stabilization_round_broadcasts_version_vectors() {
        let cfg = config(3, 4);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.tick();
        let stab_msgs = outputs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::StabilizationVector { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stab_msgs, 3, "one stabilization message per local peer");
        // Within the same interval, no second round.
        clock.set(Timestamp(11 * MS));
        let outputs = s.tick();
        assert_eq!(
            outputs
                .iter()
                .filter(|o| matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::StabilizationVector { .. },
                        ..
                    }
                ))
                .count(),
            0
        );
    }

    #[test]
    fn gss_is_the_minimum_over_local_partitions_and_is_monotonic() {
        let cfg = config(3, 3);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        s.tick(); // advances own VV[0] to 10ms via heartbeat logic

        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(8 * MS),
                    Timestamp(5 * MS),
                    Timestamp(9 * MS),
                ]),
            },
        );
        // Only one of two peers known: the GSS must not advance yet.
        assert_eq!(s.gss(), &dv(&[0, 0, 0]));

        s.handle_server_message(
            ServerId::new(0u16, 2u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(7 * MS),
                    Timestamp(6 * MS),
                    Timestamp(4 * MS),
                ]),
            },
        );
        // Own VV = [10ms, 0, 0]; peers as above. Minimum = [7ms, 0, 0].
        assert_eq!(s.gss(), &dv(&[7 * MS, 0, 0]));

        // A peer regressing (stale message) never moves the GSS backwards.
        s.handle_server_message(
            ServerId::new(0u16, 2u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![Timestamp(MS), Timestamp(MS), Timestamp(MS)]),
            },
        );
        assert!(s.gss().get(ReplicaId(0)) >= Timestamp(7 * MS));
    }

    #[test]
    fn single_partition_deployment_advances_gss_from_its_own_vector() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(9 * MS),
            },
        );
        s.handle_server_message(
            ServerId::new(2u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(8 * MS),
            },
        );
        let outputs = s.tick();
        // No peers to notify in a single-partition DC.
        assert!(outputs.iter().all(|o| !matches!(
            o,
            ServerOutput::Send {
                message: ServerMessage::StabilizationVector { .. },
                ..
            }
        )));
        assert_eq!(s.gss(), &dv(&[10 * MS, 9 * MS, 8 * MS]));
    }

    #[test]
    fn transaction_snapshot_is_bounded_by_the_gss() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);

        // A fresh remote version arrives but is not yet stable.
        let remote = Version::new(
            key,
            Value::from("unstable"),
            ReplicaId(1),
            Timestamp(20 * MS),
            dv(&[0, 0, 0]),
        );
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version: remote },
        );

        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 1);
                // Nothing stable exists for this key yet.
                assert!(items[0].response.value.is_none());
            }
        );
        let m = s.metrics();
        assert_eq!(m.rotx_served, 1);
        assert_eq!(m.unmerged_tx_items, 1);
    }

    #[test]
    fn multi_partition_transaction_round_trip() {
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut coordinator = server(0, 0, &cfg, &clock);
        let mut participant = server(0, 1, &cfg, &clock);
        let k0 = key_in(0, 2);
        let k1 = key_in(1, 2);

        coordinator.handle_client_request(
            ClientId(9),
            ClientRequest::Put {
                key: k0,
                value: Value::from("a"),
                dv: dv(&[0, 0, 0]),
            },
        );
        participant.handle_client_request(
            ClientId(9),
            ClientRequest::Put {
                key: k1,
                value: Value::from("b"),
                dv: dv(&[0, 0, 0]),
            },
        );

        let client = ClientId(1);
        let outputs = coordinator.handle_client_request(
            client,
            ClientRequest::RoTx {
                keys: vec![k0, k1],
                rdv: dv(&[0, 0, 0]),
            },
        );
        let (_, req) = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    to,
                    message: m @ ServerMessage::SliceRequest { .. },
                } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("slice request expected");
        let outputs = participant.handle_server_message(coordinator.server_id(), req);
        let resp = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    message: m @ ServerMessage::SliceResponse { .. },
                    ..
                } => Some(m.clone()),
                _ => None,
            })
            .expect("slice response expected");
        let outputs = coordinator.handle_server_message(participant.server_id(), resp);
        expect_reply!(
            extract_reply(&outputs, client),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 2);
                // The coordinator's local key is visible (local items always are); the
                // participant's key was written locally at the participant so it is
                // visible there too.
                assert!(items.iter().all(|i| i.response.value.is_some()));
            }
        );
    }

    #[test]
    fn garbage_collection_uses_the_gss() {
        let cfg = Config::builder()
            .num_replicas(1)
            .num_partitions(1)
            .gc_interval(Duration::from_millis(10))
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        for i in 1..=4u64 {
            clock.set(Timestamp((10 + i) * MS));
            s.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(i),
                    dv: dv(&[(10 + i - 1) * MS]),
                },
            );
        }
        assert_eq!(s.store().stats().versions, 4);
        clock.set(Timestamp(40 * MS));
        s.tick(); // stabilization advances the GSS (single partition: from own VV)
        clock.set(Timestamp(60 * MS));
        s.tick(); // GC runs with the fresh GSS
        assert_eq!(s.store().stats().versions, 1);
        assert!(s.metrics().gc_versions_removed >= 3);
    }

    #[test]
    fn metrics_report_served_operations() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("x"),
                dv: dv(&[0, 0, 0]),
            },
        );
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![],
                rdv: dv(&[0, 0, 0]),
            },
        );
        let m = s.metrics();
        assert_eq!(m.puts_served, 1);
        assert_eq!(m.gets_served, 1);
        assert_eq!(m.rotx_served, 1);
        assert_eq!(m.operations_served(), 3);
        assert_eq!(m.replicate_sent, 2);
    }
}
