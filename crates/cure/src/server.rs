//! The Cure\* server as a visibility policy over the shared protocol engine.

use pocc_clock::Clock;
use pocc_engine::{EngineCore, ProtocolEngine, ReadMode, SliceUnmergedMode, VisibilityPolicy};
use pocc_proto::{ClientRequest, ServerOutput};
use pocc_storage::ShardedStore;
use pocc_types::{ClientId, Config, DependencyVector, ServerId, Timestamp, VersionVector};

/// An observability snapshot of a Cure\* server.
#[derive(Clone, Debug)]
pub struct CureStatus {
    /// The server's version vector.
    pub version_vector: VersionVector,
    /// The server's current view of the Globally Stable Snapshot.
    pub gss: DependencyVector,
    /// Number of parked transactional slice reads.
    pub pending_slices: usize,
    /// Read-only transactions currently being coordinated.
    pub active_transactions: usize,
    /// Storage statistics.
    pub store: pocc_storage::StoreStats,
}

/// The pessimistic visibility policy (Cure\*, §V): a GET returns the freshest version in
/// the snapshot `GSS ∨ RDV ∨ local` — it never waits for a version to become *stable*
/// (unstable versions outside the client's history are simply not returned), only for the
/// client's own session history to be present locally; a periodic stabilization protocol
/// exchanges version vectors every few milliseconds to advance the GSS; read-only
/// transaction snapshots are bounded by the GSS (extended with the client's session
/// history); garbage is collected from the GSS directly, with no extra message exchange.
#[derive(Clone, Copy, Debug, Default)]
pub struct CurePolicy;

impl<C: Clock> VisibilityPolicy<C> for CurePolicy {
    fn slice_unmerged_mode(&self) -> SliceUnmergedMode {
        SliceUnmergedMode::AgainstGss
    }

    fn handle_client_request(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        match request {
            ClientRequest::Get { key, rdv } => {
                // Pessimistic GET, served from the snapshot `GSS ∨ RDV ∨ local` as in
                // Cure proper (the request vector is the client's full session history,
                // see `Client::new_snapshot_reads`), so that session guarantees hold
                // across plain reads and transaction snapshots alike. The GET never
                // waits on *stability* — the GSS guarantees that every stable version's
                // dependencies are installed everywhere — but it must wait for the
                // session history to be *present* locally: the snapshot may cover a
                // version this partition has not received yet, and serving early would
                // silently fall back to an older version the client has already seen.
                if core.covers_remote_deps(&rdv) {
                    let out = core.serve_get_stable(client, key, &rdv);
                    outputs.push(out);
                } else {
                    core.park_get(client, key, rdv, ReadMode::Stable);
                }
            }
            ClientRequest::Put { key, value, dv } => {
                // Identical to POCC's PUT, minus the optional dependency wait.
                core.serve_put(client, key, value, dv, &mut outputs);
                core.unpark(&mut outputs);
            }
            ClientRequest::RoTx { keys, rdv } => {
                // The snapshot visible to a Cure* transaction is bounded by the items
                // *stable* at the coordinator (the GSS), extended with the client's own
                // causal history so that session guarantees hold. The local entry is
                // taken from the coordinator's version vector because locally originated
                // items are always visible in Cure.
                let mut snapshot = core.gss.joined(&rdv);
                snapshot.advance(core.id.replica, core.vv.get(core.id.replica));
                core.start_ro_tx(client, keys, snapshot, &mut outputs);
            }
        }
        outputs
    }

    fn on_stabilization_vector(
        &mut self,
        core: &mut EngineCore<C>,
        from: ServerId,
        vv: VersionVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        core.local_vvs.insert(from.partition, vv);
        core.recompute_gss(true);
        core.unpark(outputs);
    }

    fn on_tick(
        &mut self,
        core: &mut EngineCore<C>,
        now: Timestamp,
        outputs: &mut Vec<ServerOutput>,
    ) {
        // The stabilization protocol, run every `stabilization_interval` (5 ms in §V-A).
        if now.saturating_since(core.last_stabilization) >= core.config.stabilization_interval {
            core.last_stabilization = now;
            core.stabilization_round(outputs);
        }

        // Garbage collection from the GSS: every version below the snapshot any future
        // transaction could use is collectable except the newest such version. Also
        // triggered early when a store shard exceeds the configured pressure bounds.
        if now.saturating_since(core.last_gc) >= core.config.gc_interval
            || core.gc_pressure_due(now)
        {
            core.last_gc = now;
            core.gc_from_gss();
        }

        // Operations blocked beyond the partition timeout abort the client session, as in
        // POCC (Cure itself would not need this, but the shared harness expects the same
        // session semantics from both systems): parked GETs waiting for session history
        // and coordinated transactions reply `SessionAborted`; expired slices held for
        // remote coordinators are dropped silently — the coordinator's own timeout
        // closes the client session.
        core.enforce_partition_timeouts(now, outputs);
    }
}

/// A Cure\* server `p^m_n`.
///
/// Implements the same [`pocc_proto::ProtocolServer`] interface as
/// [`pocc_protocol::PoccServer`], so the simulator and the threaded runtime can run
/// either protocol over identical workloads, deployments and network conditions.
pub struct CureServer<C> {
    engine: ProtocolEngine<C, CurePolicy>,
}

impl<C: Clock> CureServer<C> {
    /// Creates a Cure\* server for `id` with the given deployment configuration and clock.
    pub fn new(id: ServerId, config: Config, clock: C) -> Self {
        CureServer {
            engine: ProtocolEngine::new(id, config, clock, CurePolicy),
        }
    }

    /// The server's current version vector.
    pub fn version_vector(&self) -> &VersionVector {
        &self.engine.core().vv
    }

    /// The server's current view of the Globally Stable Snapshot.
    pub fn gss(&self) -> &DependencyVector {
        &self.engine.core().gss
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &ShardedStore {
        &self.engine.core().store
    }

    /// An observability snapshot of the server's state.
    pub fn status(&self) -> CureStatus {
        let core = self.engine.core();
        CureStatus {
            version_vector: core.vv.clone(),
            gss: core.gss.clone(),
            pending_slices: core.pending_len(),
            active_transactions: core.active_transactions(),
            store: core.store.stats(),
        }
    }
}

pocc_engine::delegate_protocol_server!(CureServer);

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_clock::ManualClock;
    use pocc_proto::{expect_reply, ClientReply, ProtocolServer, ServerIntrospect, ServerMessage};
    use pocc_storage::partition_for_key;
    use pocc_types::{Key, ReplicaId, Value, Version};
    use std::time::Duration;

    const MS: u64 = 1_000;

    fn config(replicas: usize, partitions: usize) -> Config {
        Config::builder()
            .num_replicas(replicas)
            .num_partitions(partitions)
            .stabilization_interval(Duration::from_millis(5))
            .build()
            .unwrap()
    }

    fn server(
        replica: u16,
        partition: u32,
        cfg: &Config,
        clock: &ManualClock,
    ) -> CureServer<ManualClock> {
        CureServer::new(
            ServerId::new(replica, partition),
            cfg.clone(),
            clock.clone(),
        )
    }

    fn key_in(partition: usize, num_partitions: usize) -> Key {
        (0u64..)
            .map(Key)
            .find(|k| partition_for_key(*k, num_partitions).index() == partition)
            .unwrap()
    }

    fn extract_reply(outputs: &[ServerOutput], client: ClientId) -> Option<ClientReply> {
        outputs.iter().find_map(|o| match o {
            ServerOutput::Reply { client: c, reply } if *c == client => Some(reply.clone()),
            _ => None,
        })
    }

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    #[test]
    fn local_writes_are_immediately_visible() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("local"),
                dv: dv(&[0, 0, 0]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"local");
            }
        );
        assert_eq!(s.metrics().old_gets, 0);
    }

    #[test]
    fn remote_writes_stay_invisible_until_the_gss_covers_them() {
        // This is the pessimism the paper measures: the fresh remote version exists locally
        // but the GET returns the older stable one until the stabilization protocol
        // advances the GSS.
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 2);

        // An old local version, then a fresh remote one whose stability is unknown.
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("old-local"),
                dv: dv(&[0, 0, 0]),
            },
        );
        let remote = Version::new(
            key,
            Value::from("fresh-remote"),
            ReplicaId(1),
            Timestamp(20 * MS),
            dv(&[0, 0, 0]),
        );
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version: remote },
        );

        // GET: the remote version is not covered by the GSS (still zero), so the stale
        // local version is returned and the staleness counters move.
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"old-local");
            }
        );
        let m = s.metrics();
        assert_eq!(m.old_gets, 1);
        assert_eq!(m.unmerged_gets, 1);
        assert_eq!(m.fresher_versions_sum, 1);
        assert!(s.take_extra_work() >= 1, "the chain walk must be charged");

        // The stabilization protocol runs: the peer partition reports a version vector
        // covering the remote update, the GSS advances, and the fresh version becomes
        // visible.
        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(30 * MS),
                    Timestamp(30 * MS),
                    Timestamp(30 * MS),
                ]),
            },
        );
        // This server's own VV must also cover it (it does: the replicate advanced entry 1,
        // and entries 0/2 advance with heartbeat/tick).
        clock.set(Timestamp(31 * MS));
        s.tick();
        s.handle_server_message(
            ServerId::new(2u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(30 * MS),
            },
        );
        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(31 * MS),
                    Timestamp(30 * MS),
                    Timestamp(30 * MS),
                ]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(2)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"fresh-remote");
            }
        );
    }

    #[test]
    fn gets_wait_for_session_history_presence_not_stability() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);

        // The client's history claims a remote version this server has not received:
        // the GET parks (serving now could regress below what the client already saw).
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 20 * MS, 0]),
            },
        );
        assert!(extract_reply(&outputs, ClientId(1)).is_none());
        assert_eq!(s.metrics().blocked_operations, 1);

        // The remote version arrives (advancing VV[1] past the request vector): the GET
        // is served — and returns the *unstable* version, because the client's session
        // history extends visibility past the GSS. No stabilization round is needed.
        let remote = Version::new(
            key,
            Value::from("seen-by-client"),
            ReplicaId(1),
            Timestamp(20 * MS),
            dv(&[0, 0, 0]),
        );
        let outputs = s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version: remote },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"seen-by-client");
            }
        );
        assert_eq!(s.gss(), &dv(&[0, 0, 0]), "nothing stabilized");
    }

    #[test]
    fn stabilization_round_broadcasts_version_vectors() {
        let cfg = config(3, 4);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let outputs = s.tick();
        let stab_msgs = outputs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::StabilizationVector { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stab_msgs, 3, "one stabilization message per local peer");
        // Within the same interval, no second round.
        clock.set(Timestamp(11 * MS));
        let outputs = s.tick();
        assert_eq!(
            outputs
                .iter()
                .filter(|o| matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::StabilizationVector { .. },
                        ..
                    }
                ))
                .count(),
            0
        );
    }

    #[test]
    fn gss_is_the_minimum_over_local_partitions_and_is_monotonic() {
        let cfg = config(3, 3);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        s.tick(); // advances own VV[0] to 10ms via heartbeat logic

        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(8 * MS),
                    Timestamp(5 * MS),
                    Timestamp(9 * MS),
                ]),
            },
        );
        // Only one of two peers known: the GSS must not advance yet.
        assert_eq!(s.gss(), &dv(&[0, 0, 0]));

        s.handle_server_message(
            ServerId::new(0u16, 2u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(7 * MS),
                    Timestamp(6 * MS),
                    Timestamp(4 * MS),
                ]),
            },
        );
        // Own VV = [10ms, 0, 0]; peers as above. Minimum = [7ms, 0, 0].
        assert_eq!(s.gss(), &dv(&[7 * MS, 0, 0]));

        // A peer regressing (stale message) never moves the GSS backwards.
        s.handle_server_message(
            ServerId::new(0u16, 2u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![Timestamp(MS), Timestamp(MS), Timestamp(MS)]),
            },
        );
        assert!(s.gss().get(ReplicaId(0)) >= Timestamp(7 * MS));
    }

    #[test]
    fn single_partition_deployment_advances_gss_from_its_own_vector() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(9 * MS),
            },
        );
        s.handle_server_message(
            ServerId::new(2u16, 0u32),
            ServerMessage::Heartbeat {
                clock: Timestamp(8 * MS),
            },
        );
        let outputs = s.tick();
        // No peers to notify in a single-partition DC.
        assert!(outputs.iter().all(|o| !matches!(
            o,
            ServerOutput::Send {
                message: ServerMessage::StabilizationVector { .. },
                ..
            }
        )));
        assert_eq!(s.gss(), &dv(&[10 * MS, 9 * MS, 8 * MS]));
    }

    #[test]
    fn transaction_snapshot_is_bounded_by_the_gss() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);

        // A fresh remote version arrives but is not yet stable.
        let remote = Version::new(
            key,
            Value::from("unstable"),
            ReplicaId(1),
            Timestamp(20 * MS),
            dv(&[0, 0, 0]),
        );
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate { version: remote },
        );

        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 1);
                // Nothing stable exists for this key yet.
                assert!(items[0].response.value.is_none());
            }
        );
        let m = s.metrics();
        assert_eq!(m.rotx_served, 1);
        assert_eq!(m.unmerged_tx_items, 1);
    }

    #[test]
    fn multi_partition_transaction_round_trip() {
        let cfg = config(3, 2);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut coordinator = server(0, 0, &cfg, &clock);
        let mut participant = server(0, 1, &cfg, &clock);
        let k0 = key_in(0, 2);
        let k1 = key_in(1, 2);

        coordinator.handle_client_request(
            ClientId(9),
            ClientRequest::Put {
                key: k0,
                value: Value::from("a"),
                dv: dv(&[0, 0, 0]),
            },
        );
        participant.handle_client_request(
            ClientId(9),
            ClientRequest::Put {
                key: k1,
                value: Value::from("b"),
                dv: dv(&[0, 0, 0]),
            },
        );

        let client = ClientId(1);
        let outputs = coordinator.handle_client_request(
            client,
            ClientRequest::RoTx {
                keys: vec![k0, k1],
                rdv: dv(&[0, 0, 0]),
            },
        );
        let (_, req) = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    to,
                    message: m @ ServerMessage::SliceRequest { .. },
                } => Some((*to, m.clone())),
                _ => None,
            })
            .expect("slice request expected");
        let outputs = participant.handle_server_message(coordinator.server_id(), req);
        let resp = outputs
            .iter()
            .find_map(|o| match o {
                ServerOutput::Send {
                    message: m @ ServerMessage::SliceResponse { .. },
                    ..
                } => Some(m.clone()),
                _ => None,
            })
            .expect("slice response expected");
        let outputs = coordinator.handle_server_message(participant.server_id(), resp);
        expect_reply!(
            extract_reply(&outputs, client),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 2);
                // The coordinator's local key is visible (local items always are); the
                // participant's key was written locally at the participant so it is
                // visible there too.
                assert!(items.iter().all(|i| i.response.value.is_some()));
            }
        );
    }

    #[test]
    fn garbage_collection_uses_the_gss() {
        let cfg = Config::builder()
            .num_replicas(1)
            .num_partitions(1)
            .gc_interval(Duration::from_millis(10))
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        for i in 1..=4u64 {
            clock.set(Timestamp((10 + i) * MS));
            s.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(i),
                    dv: dv(&[(10 + i - 1) * MS]),
                },
            );
        }
        assert_eq!(s.store().stats().versions, 4);
        clock.set(Timestamp(40 * MS));
        s.tick(); // stabilization advances the GSS (single partition: from own VV)
        clock.set(Timestamp(60 * MS));
        s.tick(); // GC runs with the fresh GSS
        assert_eq!(s.store().stats().versions, 1);
        assert!(s.metrics().gc_versions_removed >= 3);
    }

    #[test]
    fn metrics_report_served_operations() {
        let cfg = config(3, 1);
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(0, 0, &cfg, &clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("x"),
                dv: dv(&[0, 0, 0]),
            },
        );
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![],
                rdv: dv(&[0, 0, 0]),
            },
        );
        let m = s.metrics();
        assert_eq!(m.puts_served, 1);
        assert_eq!(m.gets_served, 1);
        assert_eq!(m.rotx_served, 1);
        assert_eq!(m.operations_served(), 3);
        assert_eq!(m.replicate_sent, 2);
    }
}
