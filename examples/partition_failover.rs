//! Availability under a network partition: plain POCC vs HA-POCC.
//!
//! The paper (§III-B) trades a little availability for freshness: a plain POCC server
//! blocks a request whose dependencies are stuck behind a network partition, and after a
//! timeout it closes the client session. HA-POCC (§IV-C, implemented in the `pocc-ha`
//! crate) detects the partition, falls back to a Cure-style pessimistic mode in which no
//! operation blocks, and promotes itself back once the partition heals.
//!
//! This example injects a WAN partition into the deterministic simulator and compares the
//! two behaviours.
//!
//! Run with (release recommended):
//! ```text
//! cargo run --release --example partition_failover
//! ```

use pocc::sim::{FaultEvent, ProtocolKind, SimConfig, Simulation};
use pocc::types::ReplicaId;
use pocc::workload::WorkloadMix;
use std::time::Duration;

fn run(protocol: ProtocolKind) -> pocc::sim::SimReport {
    let config = SimConfig::builder()
        .protocol(protocol)
        .replicas(3)
        .partitions(4)
        .clients_per_partition(8)
        .mix(WorkloadMix::GetPut { gets_per_put: 4 })
        .keys_per_partition(2_000)
        .think_time(Duration::from_millis(10))
        .warmup(Duration::from_millis(300))
        .duration(Duration::from_secs(3))
        .drain(Duration::from_secs(1))
        .seed(7)
        // DC0 <-> DC1 is partitioned for one second in the middle of the run.
        .fault(FaultEvent::Partition {
            at: Duration::from_millis(1_000),
            a: ReplicaId(0),
            b: ReplicaId(1),
        })
        .fault(FaultEvent::Heal {
            at: Duration::from_millis(2_000),
            a: ReplicaId(0),
            b: ReplicaId(1),
        })
        .build();
    Simulation::new(config).run()
}

fn main() {
    println!("injecting a 1-second partition between DC0 and DC1 (3 DCs, 4 partitions)...\n");
    let pocc = run(ProtocolKind::Pocc);
    let ha = run(ProtocolKind::HaPocc);

    println!("{:<38} {:>12} {:>12}", "metric", "POCC", "HA-POCC");
    println!("{}", "-".repeat(64));
    println!(
        "{:<38} {:>12.0} {:>12.0}",
        "throughput during the run (ops/s)", pocc.throughput_ops_per_sec, ha.throughput_ops_per_sec
    );
    println!(
        "{:<38} {:>12} {:>12}",
        "operations completed", pocc.operations_completed, ha.operations_completed
    );
    println!(
        "{:<38} {:>12} {:>12}",
        "sessions aborted + re-initialised", pocc.sessions_reinitialized, ha.sessions_reinitialized
    );
    println!(
        "{:<38} {:>12?} {:>12?}",
        "worst-case operation latency",
        pocc.latency_all.max(),
        ha.latency_all.max()
    );
    println!(
        "{:<38} {:>12.2e} {:>12.2e}",
        "blocking probability",
        pocc.blocking_probability(),
        ha.blocking_probability()
    );
    println!(
        "{:<38} {:>12} {:>12}",
        "replicas converged after heal", pocc.converged, ha.converged
    );
    println!();
    println!(
        "Plain POCC stalls requests that depend on updates stuck behind the partition and\n\
         eventually aborts those sessions; HA-POCC switches the affected servers to the\n\
         pessimistic fall-back so clients keep making progress, then recovers once the\n\
         partition heals."
    );
}
