//! Freshness/staleness head-to-head: POCC vs Cure\* on the same simulated deployment.
//!
//! This is a miniature of the paper's Figure 2: it runs the identical workload through
//! both protocols in the deterministic simulator and prints throughput, response time,
//! POCC's blocking behaviour and Cure\*'s staleness side by side.
//!
//! Run with (release strongly recommended):
//! ```text
//! cargo run --release --example staleness_comparison
//! ```

use pocc::sim::{ProtocolKind, SimConfig, Simulation};
use pocc::workload::WorkloadMix;
use std::time::Duration;

fn run(protocol: ProtocolKind) -> pocc::sim::SimReport {
    let config = SimConfig::builder()
        .protocol(protocol)
        .replicas(3)
        .partitions(8)
        .clients_per_partition(24)
        .mix(WorkloadMix::GetPut { gets_per_put: 8 })
        .keys_per_partition(10_000)
        .think_time(Duration::from_millis(10))
        .warmup(Duration::from_millis(500))
        .duration(Duration::from_secs(2))
        .drain(Duration::from_millis(300))
        .seed(42)
        .build();
    Simulation::new(config).run()
}

fn main() {
    println!("simulating the same 3-DC, 8-partition, 8:1 GET:PUT workload on both systems...\n");
    let pocc = run(ProtocolKind::Pocc);
    let cure = run(ProtocolKind::Cure);

    println!("{:<34} {:>14} {:>14}", "metric", "POCC", "Cure*");
    println!("{}", "-".repeat(64));
    println!(
        "{:<34} {:>14.0} {:>14.0}",
        "throughput (ops/s)", pocc.throughput_ops_per_sec, cure.throughput_ops_per_sec
    );
    println!(
        "{:<34} {:>14?} {:>14?}",
        "avg GET latency",
        pocc.latency_get.mean(),
        cure.latency_get.mean()
    );
    println!(
        "{:<34} {:>14.2e} {:>14.2e}",
        "blocking probability",
        pocc.blocking_probability(),
        cure.blocking_probability()
    );
    println!(
        "{:<34} {:>14?} {:>14?}",
        "avg blocking time",
        pocc.avg_block_time(),
        cure.avg_block_time()
    );
    println!(
        "{:<34} {:>13.3}% {:>13.3}%",
        "GETs returning stale (old) data",
        pocc.old_get_fraction() * 100.0,
        cure.old_get_fraction() * 100.0
    );
    println!(
        "{:<34} {:>13.3}% {:>13.3}%",
        "GETs observing unmerged items",
        pocc.unmerged_get_fraction() * 100.0,
        cure.unmerged_get_fraction() * 100.0
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "stabilization messages",
        pocc.server_metrics.stabilization_messages,
        cure.server_metrics.stabilization_messages
    );
    println!();
    println!(
        "POCC always returns the freshest received version (0% old GETs) at the cost of a\n\
         tiny blocking probability; Cure* never blocks but returns stale data whenever the\n\
         stabilization protocol lags behind replication."
    );
}
