//! Quickstart: bring up an in-process geo-replicated POCC cluster, write and read data,
//! and peek at the dependency metadata the protocol tracks for you.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use pocc::prelude::*;
use std::time::Duration;

fn main() {
    // A three-data-center deployment with 4 partitions per DC and emulated WAN latencies.
    // `Config::paper_testbed()` would give the full 32-partition setup of the paper.
    let config = Config::builder()
        .num_replicas(3)
        .num_partitions(4)
        .latency(LatencyMatrix::uniform(
            3,
            Duration::from_micros(100),
            Duration::from_millis(15),
        ))
        .build()
        .expect("valid configuration");

    println!(
        "starting a POCC cluster: {} data centers x {} partitions = {} server threads",
        config.num_replicas,
        config.num_partitions,
        config.num_servers()
    );
    let cluster = Cluster::builder()
        .config(config)
        .protocol(RuntimeProtocol::Pocc)
        .start();

    // A client in data center 0 writes a few related keys.
    let mut alice = cluster.client(ReplicaId(0));
    alice
        .put(Key(1), Value::from("profile: Alice"))
        .expect("put profile");
    alice
        .put(Key(2), Value::from("post: hello world"))
        .expect("put post");
    println!(
        "alice wrote 2 keys; her dependency vector is now {}",
        alice.session().dependency_vector()
    );

    // Reading back locally is immediate and always returns the freshest version.
    let post = alice.get(Key(2)).expect("get post").expect("post exists");
    println!(
        "alice reads her post back: {:?}",
        String::from_utf8_lossy(post.as_slice())
    );

    // A client in another data center sees the data once it has replicated over the
    // (emulated) WAN. POCC makes it visible the moment it arrives — no stabilization wait.
    let mut bob = cluster.client(ReplicaId(2));
    let mut profile = None;
    for attempt in 0..200 {
        if let Some(v) = bob.get(Key(1)).expect("get profile") {
            println!(
                "bob (DC2) sees alice's profile after ~{} ms: {:?}",
                attempt * 2,
                String::from_utf8_lossy(v.as_slice())
            );
            profile = Some(v);
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(profile.is_some(), "replication must deliver the profile");

    // Bob reads both keys in one causally consistent snapshot. Give replication and the
    // heartbeat protocol a moment so the snapshot covers both writes.
    std::thread::sleep(Duration::from_millis(50));
    let snapshot = bob
        .ro_tx(vec![Key(1), Key(2)])
        .expect("read-only transaction");
    println!("bob's causal snapshot:");
    for (key, value) in &snapshot {
        println!(
            "  {key} -> {}",
            value
                .as_ref()
                .map(|v| String::from_utf8_lossy(v.as_slice()).into_owned())
                .unwrap_or_else(|| "(not yet visible)".into())
        );
    }

    cluster.shutdown();
    println!("done.");
}
