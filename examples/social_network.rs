//! A social-network style scenario — the workload class the paper's introduction motivates.
//!
//! Alice posts a photo and then a comment referring to it from data center 0; Bob follows
//! from data center 1. Causal consistency guarantees Bob never sees the comment without
//! the photo it refers to, even though replication of the two items races over the WAN.
//! The example drives many rounds of this pattern and verifies the invariant on every
//! read, demonstrating the guarantee POCC provides while returning the freshest data it
//! can.
//!
//! Run with:
//! ```text
//! cargo run --example social_network
//! ```

use pocc::prelude::*;
use std::time::Duration;

/// Keys: photo number `i` lives at `PHOTO_BASE + i`, its comment at `COMMENT_BASE + i`.
const PHOTO_BASE: u64 = 10_000;
const COMMENT_BASE: u64 = 20_000;
const ROUNDS: u64 = 30;

fn main() {
    let config = Config::builder()
        .num_replicas(2)
        .num_partitions(4)
        .latency(LatencyMatrix::uniform(
            2,
            Duration::from_micros(100),
            Duration::from_millis(10),
        ))
        .build()
        .expect("valid configuration");
    let cluster = Cluster::builder()
        .config(config)
        .protocol(RuntimeProtocol::Pocc)
        .start();

    let mut alice = cluster.client(ReplicaId(0));
    let mut bob = cluster.client(ReplicaId(1));

    let mut bob_saw_comment = 0u64;
    let mut bob_saw_photo_first = 0u64;

    for round in 0..ROUNDS {
        // Alice uploads a photo, then comments on it: the comment causally depends on the
        // photo through Alice's session.
        alice
            .put(
                Key(PHOTO_BASE + round),
                Value::from(format!("photo #{round}").as_str()),
            )
            .expect("post photo");
        alice
            .put(
                Key(COMMENT_BASE + round),
                Value::from(format!("comment on photo #{round}").as_str()),
            )
            .expect("post comment");

        // Bob polls his timeline: he reads the comment first (the "dangerous" order) and
        // then the photo. Under causal consistency, whenever the comment is visible the
        // photo must be too — POCC enforces this by blocking the photo read until the
        // photo has been received, which in practice has already happened.
        for _ in 0..50 {
            let comment = bob.get(Key(COMMENT_BASE + round)).expect("read comment");
            if comment.is_some() {
                bob_saw_comment += 1;
                let photo = bob.get(Key(PHOTO_BASE + round)).expect("read photo");
                assert!(
                    photo.is_some(),
                    "causality violated: comment #{round} visible without its photo"
                );
                bob_saw_photo_first += 1;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    println!("rounds driven:                {ROUNDS}");
    println!("comments Bob observed:        {bob_saw_comment}");
    println!("photo present every time:     {bob_saw_photo_first}");
    println!("causal-consistency violations: 0 (asserted on every read)");

    cluster.shutdown();
}
