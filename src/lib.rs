//! # POCC — Optimistic Causal Consistency for geo-replicated key-value stores
//!
//! A from-scratch Rust reproduction of *"Optimistic Causal Consistency for Geo-Replicated
//! Key-Value Stores"* (Spirovska, Didona, Zwaenepoel — ICDCS 2017), packaged as a facade
//! crate re-exporting the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `pocc-types` | Ids, timestamps, version/dependency vectors, item versions, configuration |
//! | [`clock`] | `pocc-clock` | Physical clock abstractions (real, simulated, skewed, monotonic) |
//! | [`storage`] | `pocc-storage` | Multi-version store: version chains, visibility, garbage collection |
//! | [`proto`] | `pocc-proto` | Wire messages, binary codec, the sans-IO server/client API |
//! | [`engine`] | `pocc-engine` | The shared protocol engine: replication/heartbeat/GC/transaction machinery behind pluggable visibility policies |
//! | [`protocol`] | `pocc-protocol` | **POCC** — the paper's optimistic protocol (Algorithms 1 & 2) |
//! | [`cure`] | `pocc-cure` | **Cure\*** — the pessimistic baseline (GSS stabilization) |
//! | [`ha`] | `pocc-ha` | **HA-POCC** — partition detection, pessimistic fall-back, recovery |
//! | [`adaptive`] | `pocc-adaptive` | **Adaptive-POCC** — per-key optimism with a GSS-stable fall-back under remote churn |
//! | [`net`] | `pocc-net` | Simulated geo network: latency model, FIFO links, partition injection |
//! | [`workload`] | `pocc-workload` | Zipfian key choice, GET:PUT and transactional mixes |
//! | [`sim`] | `pocc-sim` | Deterministic discrete-event simulator (regenerates the paper's figures) |
//! | [`exec`] | `pocc-exec` | Threaded shard-parallel server runtime (worker lanes, write pipelining) |
//! | [`runtime`] | `pocc-runtime` | Threaded in-process cluster with synchronous client handles |
//!
//! ## Quick start
//!
//! Run a live, multi-threaded three-data-center cluster on your machine:
//!
//! ```
//! use pocc::prelude::*;
//!
//! let cluster = Cluster::builder().protocol(RuntimeProtocol::Pocc).start();
//! let mut client = cluster.client(ReplicaId(0));
//! client.put(Key(1), Value::from("hello, geo-replication")).unwrap();
//! assert!(client.get(Key(1)).unwrap().is_some());
//! cluster.shutdown();
//! ```
//!
//! Add `.worker_lanes(4)` before `.start()` to run every server on the shard-parallel
//! execution runtime: client operations are key-hash routed to four worker-lane threads
//! per server and writes are pipelined (see the [`exec`] crate docs for the model).
//!
//! Or reproduce a point of the paper's evaluation with the simulator:
//!
//! ```
//! use pocc::sim::{ProtocolKind, SimConfig, Simulation};
//! use std::time::Duration;
//!
//! let report = Simulation::new(
//!     SimConfig::builder()
//!         .protocol(ProtocolKind::Pocc)
//!         .partitions(4)
//!         .clients_per_partition(2)
//!         .duration(Duration::from_millis(300))
//!         .build(),
//! )
//! .run();
//! println!("{}", report.summary());
//! ```
//!
//! See `examples/` for complete scenarios and `crates/bench` for the scenario-driven
//! benchmark harness (`runner --list` shows the registry).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pocc_adaptive as adaptive;
pub use pocc_clock as clock;
pub use pocc_cure as cure;
pub use pocc_engine as engine;
pub use pocc_exec as exec;
pub use pocc_ha as ha;
pub use pocc_net as net;
pub use pocc_proto as proto;
pub use pocc_protocol as protocol;
pub use pocc_runtime as runtime;
pub use pocc_sim as sim;
pub use pocc_storage as storage;
pub use pocc_types as types;
pub use pocc_workload as workload;

pub use pocc_adaptive::AdaptiveServer;
pub use pocc_cure::CureServer;
pub use pocc_engine::{EngineCore, ProtocolEngine, VisibilityPolicy};
pub use pocc_exec::{ExecProtocol, ParallelServer};
pub use pocc_ha::{HaPoccServer, HaSession};
pub use pocc_proto::{InstrumentedServer, ProtocolClient, ProtocolServer, ServerIntrospect};
pub use pocc_protocol::{Client, PoccServer};
pub use pocc_runtime::{
    Cluster, ClusterBuilder, ClusterClient, RuntimeProtocol, ServerProbe, TransportKind,
};
pub use pocc_sim::{ProtocolKind, SimConfig, SimReport, Simulation};
pub use pocc_types::{Config, Key, ReplicaId, Timestamp, Value};

/// One-stop imports for applications, examples and benchmarks: the cluster builder and
/// client handles, protocol selection for both deployment modes, configuration builders,
/// the simulator entry points and the common value types.
pub mod prelude {
    pub use pocc_exec::{ExecProtocol, FastPathProfile, OutputSink, ParallelServer};
    pub use pocc_proto::{InstrumentedServer, ProtocolClient, ProtocolServer, ServerIntrospect};
    pub use pocc_runtime::{
        Cluster, ClusterBuilder, ClusterClient, RuntimeProtocol, ServerProbe, TransportKind,
    };
    pub use pocc_sim::{ProtocolKind, SimConfig, SimConfigBuilder, SimReport, Simulation};
    pub use pocc_types::{
        ClientId, Config, ConfigBuilder, DependencyVector, Key, LatencyMatrix, PartitionId,
        ReplicaId, ServerId, Timestamp, Value, VersionVector,
    };
}
